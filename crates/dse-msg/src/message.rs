//! The DSE message set and its wire encoding.
//!
//! These are the payloads of the paper's *message exchange mechanism*
//! (Fig. 3): global-memory access requests/responses, parallel process
//! invocation/termination, synchronization traffic and raw user data. The
//! encoding is an explicit little-endian layout — tag byte, fixed header
//! fields, then any variable payload — because the encoded size is also the
//! number of bytes the network model puts on the wire.

use crate::bytes::Bytes;
use crate::codec::{CodecError, Reader, Writer};
use crate::ids::{GlobalPid, RegionId, ReqId};

/// One DSE runtime message.
///
/// ```
/// use dse_msg::{Message, RegionId, ReqId};
///
/// let msg = Message::GmReadReq {
///     req: ReqId(7),
///     region: RegionId(0),
///     offset: 128,
///     len: 64,
/// };
/// let wire = msg.encode();
/// assert_eq!(wire.len(), msg.wire_len());
/// assert_eq!(Message::decode(&wire).unwrap(), msg);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Read `len` bytes at `offset` within a global-memory region.
    GmReadReq {
        /// Correlation id.
        req: ReqId,
        /// Target region.
        region: RegionId,
        /// Byte offset within the region.
        offset: u64,
        /// Byte length to read.
        len: u32,
    },
    /// Response carrying the bytes of a [`Message::GmReadReq`].
    GmReadResp {
        /// Correlation id of the request.
        req: ReqId,
        /// The data read (a shared view — on the receive path it aliases
        /// the frame decoder's reassembly buffer, copy-free).
        data: Bytes,
    },
    /// Write bytes at `offset` within a global-memory region.
    GmWriteReq {
        /// Correlation id.
        req: ReqId,
        /// Target region.
        region: RegionId,
        /// Byte offset within the region.
        offset: u64,
        /// Bytes to write.
        data: Bytes,
    },
    /// Acknowledges a [`Message::GmWriteReq`].
    GmWriteAck {
        /// Correlation id of the request.
        req: ReqId,
    },
    /// Atomic fetch-and-add on an 8-byte cell of a region (synchronization
    /// substrate for locks, counters and barriers).
    GmFetchAddReq {
        /// Correlation id.
        req: ReqId,
        /// Target region.
        region: RegionId,
        /// Byte offset of the 8-byte cell.
        offset: u64,
        /// Signed increment.
        delta: i64,
    },
    /// Response to [`Message::GmFetchAddReq`] with the previous value.
    GmFetchAddResp {
        /// Correlation id of the request.
        req: ReqId,
        /// Value of the cell before the increment.
        prev: i64,
    },
    /// Several pipelined global-memory operations for one home node,
    /// coalesced into a single request message by the split-phase API.
    /// Operations are executed by the serving kernel strictly in order;
    /// one [`Message::GmBatchResp`] answers the whole batch.
    GmBatchReq {
        /// Correlation id (covers the whole batch).
        req: ReqId,
        /// The operations, in program-issue order.
        ops: Vec<GmOp>,
    },
    /// Response to a [`Message::GmBatchReq`]: one data payload per read
    /// operation, in batch order. Writes are acknowledged implicitly by
    /// the response's arrival (all invalidations have completed).
    GmBatchResp {
        /// Correlation id of the batch.
        req: ReqId,
        /// Read results, in the order the reads appeared in the batch.
        reads: Vec<Bytes>,
    },
    /// Invalidate any cached copies of a region range (cache-coherence
    /// traffic when the optional global-memory cache is enabled).
    GmInvalidate {
        /// Correlation id (acknowledged by [`Message::GmInvalidateAck`]).
        req: ReqId,
        /// Target region.
        region: RegionId,
        /// Byte offset of the invalidated range.
        offset: u64,
        /// Length of the invalidated range.
        len: u32,
    },
    /// Confirms a [`Message::GmInvalidate`] (the stale copies are gone).
    GmInvalidateAck {
        /// Correlation id of the invalidation.
        req: ReqId,
    },
    /// Ask a node's kernel to start a parallel process.
    InvokeReq {
        /// Correlation id.
        req: ReqId,
        /// Rank the new process will hold in the parallel program.
        rank: u32,
        /// Opaque argument bytes handed to the process body.
        args: Vec<u8>,
    },
    /// Confirms an [`Message::InvokeReq`] with the new global pid.
    InvokeAck {
        /// Correlation id of the request.
        req: ReqId,
        /// The spawned process's cluster-wide pid.
        pid: GlobalPid,
    },
    /// A parallel process finished (sent home to the invoking kernel).
    ExitNotice {
        /// Which process exited.
        pid: GlobalPid,
        /// Application exit status.
        status: i32,
    },
    /// Ask a kernel to terminate a resident process.
    TerminateReq {
        /// Correlation id.
        req: ReqId,
        /// Which process to terminate.
        pid: GlobalPid,
    },
    /// Confirms a [`Message::TerminateReq`].
    TerminateAck {
        /// Correlation id of the request.
        req: ReqId,
    },
    /// A process entered a barrier.
    BarrierEnter {
        /// Barrier identifier.
        barrier: u32,
        /// Entering process.
        pid: GlobalPid,
    },
    /// The barrier master releases all waiters of an epoch.
    BarrierRelease {
        /// Barrier identifier.
        barrier: u32,
        /// Completed epoch number.
        epoch: u32,
    },
    /// Request ownership of a cluster lock.
    LockReq {
        /// Correlation id.
        req: ReqId,
        /// Lock identifier.
        lock: u32,
        /// Requesting process.
        pid: GlobalPid,
    },
    /// Grant of a [`Message::LockReq`].
    LockGrant {
        /// Correlation id of the request.
        req: ReqId,
        /// Lock identifier.
        lock: u32,
    },
    /// Release a held cluster lock.
    UnlockReq {
        /// Lock identifier.
        lock: u32,
        /// Releasing process.
        pid: GlobalPid,
    },
    /// Application-level point-to-point data (the message-passing escape
    /// hatch the API also exposes).
    UserData {
        /// Sender process.
        from: GlobalPid,
        /// Application tag for matching.
        tag: u32,
        /// Payload bytes.
        data: Vec<u8>,
    },
    /// In-band telemetry: a compact batch of per-PE metric deltas shipped
    /// periodically from every kernel to the aggregating kernel on node 0.
    /// The payload is opaque at this layer (encoded/decoded by the
    /// observability crate's `aggregate` module) so the message set stays
    /// independent of the metric schema.
    Telemetry {
        /// Emitting processor element (node id).
        pe: u32,
        /// Per-PE emission sequence number (lets the aggregator detect
        /// dropped or reordered deltas).
        seq: u32,
        /// Encoded metric-delta payload.
        payload: Vec<u8>,
    },
    /// Cluster-wide failure notification: a PE observed an unrecoverable
    /// fault (dead peer, exhausted retries). Non-zero PEs report to PE 0,
    /// which broadcasts the abort so every kernel and application thread
    /// unwinds instead of hanging on a peer that will never answer.
    Abort {
        /// The PE that first observed the failure.
        source: u32,
        /// Machine-readable failure class (see the live engine's
        /// `FailureKind`); 0 means unspecified.
        code: u32,
        /// Human-readable detail (UTF-8, best effort).
        detail: Vec<u8>,
    },
    /// Ask a kernel's main loop to exit (orderly shutdown).
    KernelShutdown,
}

/// One operation inside a [`Message::GmBatchReq`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GmOp {
    /// Read `len` bytes at `offset` of `region`.
    Read {
        /// Target region.
        region: RegionId,
        /// Byte offset within the region.
        offset: u64,
        /// Byte length to read.
        len: u32,
    },
    /// Write `data` at `offset` of `region`.
    Write {
        /// Target region.
        region: RegionId,
        /// Byte offset within the region.
        offset: u64,
        /// Bytes to write.
        data: Bytes,
    },
}

impl GmOp {
    /// Encoded size of this operation inside a batch.
    fn wire_len(&self) -> usize {
        // kind byte + region + offset, then len (read) or 4-byte-prefixed data.
        1 + 4
            + 8
            + match self {
                GmOp::Read { .. } => 4,
                GmOp::Write { data, .. } => 4 + data.len(),
            }
    }
}

const GM_OP_READ: u8 = 0;
const GM_OP_WRITE: u8 = 1;

const TAG_GM_READ_REQ: u8 = 0x01;
const TAG_GM_READ_RESP: u8 = 0x02;
const TAG_GM_WRITE_REQ: u8 = 0x03;
const TAG_GM_WRITE_ACK: u8 = 0x04;
const TAG_GM_FADD_REQ: u8 = 0x05;
const TAG_GM_FADD_RESP: u8 = 0x06;
const TAG_GM_INVALIDATE: u8 = 0x07;
const TAG_GM_INVALIDATE_ACK: u8 = 0x08;
const TAG_GM_BATCH_REQ: u8 = 0x09;
const TAG_GM_BATCH_RESP: u8 = 0x0A;
const TAG_INVOKE_REQ: u8 = 0x10;
const TAG_INVOKE_ACK: u8 = 0x11;
const TAG_EXIT_NOTICE: u8 = 0x12;
const TAG_TERMINATE_REQ: u8 = 0x13;
const TAG_TERMINATE_ACK: u8 = 0x14;
const TAG_BARRIER_ENTER: u8 = 0x20;
const TAG_BARRIER_RELEASE: u8 = 0x21;
const TAG_LOCK_REQ: u8 = 0x22;
const TAG_LOCK_GRANT: u8 = 0x23;
const TAG_UNLOCK_REQ: u8 = 0x24;
const TAG_USER_DATA: u8 = 0x30;
const TAG_TELEMETRY: u8 = 0x40;
const TAG_ABORT: u8 = 0x50;
const TAG_KERNEL_SHUTDOWN: u8 = 0x7F;

impl Message {
    /// Encode into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut buf);
        buf
    }

    /// Append the encoding to `out` (the pooled-buffer entry point:
    /// steady-state senders reuse one buffer instead of allocating per
    /// message). Appends exactly [`Message::wire_len`] bytes.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.wire_len());
        let mut w = Writer::from_vec(std::mem::take(out));
        match self {
            Message::GmReadReq {
                req,
                region,
                offset,
                len,
            } => {
                w.u8(TAG_GM_READ_REQ);
                w.u64(req.0);
                w.u32(region.0);
                w.u64(*offset);
                w.u32(*len);
            }
            Message::GmReadResp { req, data } => {
                w.u8(TAG_GM_READ_RESP);
                w.u64(req.0);
                w.bytes(data);
            }
            Message::GmWriteReq {
                req,
                region,
                offset,
                data,
            } => {
                w.u8(TAG_GM_WRITE_REQ);
                w.u64(req.0);
                w.u32(region.0);
                w.u64(*offset);
                w.bytes(data);
            }
            Message::GmWriteAck { req } => {
                w.u8(TAG_GM_WRITE_ACK);
                w.u64(req.0);
            }
            Message::GmFetchAddReq {
                req,
                region,
                offset,
                delta,
            } => {
                w.u8(TAG_GM_FADD_REQ);
                w.u64(req.0);
                w.u32(region.0);
                w.u64(*offset);
                w.i64(*delta);
            }
            Message::GmFetchAddResp { req, prev } => {
                w.u8(TAG_GM_FADD_RESP);
                w.u64(req.0);
                w.i64(*prev);
            }
            Message::GmBatchReq { req, ops } => {
                w.u8(TAG_GM_BATCH_REQ);
                w.u64(req.0);
                w.u32(ops.len() as u32);
                for op in ops {
                    match op {
                        GmOp::Read {
                            region,
                            offset,
                            len,
                        } => {
                            w.u8(GM_OP_READ);
                            w.u32(region.0);
                            w.u64(*offset);
                            w.u32(*len);
                        }
                        GmOp::Write {
                            region,
                            offset,
                            data,
                        } => {
                            w.u8(GM_OP_WRITE);
                            w.u32(region.0);
                            w.u64(*offset);
                            w.bytes(data);
                        }
                    }
                }
            }
            Message::GmBatchResp { req, reads } => {
                w.u8(TAG_GM_BATCH_RESP);
                w.u64(req.0);
                w.u32(reads.len() as u32);
                for data in reads {
                    w.bytes(data);
                }
            }
            Message::GmInvalidate {
                req,
                region,
                offset,
                len,
            } => {
                w.u8(TAG_GM_INVALIDATE);
                w.u64(req.0);
                w.u32(region.0);
                w.u64(*offset);
                w.u32(*len);
            }
            Message::GmInvalidateAck { req } => {
                w.u8(TAG_GM_INVALIDATE_ACK);
                w.u64(req.0);
            }
            Message::InvokeReq { req, rank, args } => {
                w.u8(TAG_INVOKE_REQ);
                w.u64(req.0);
                w.u32(*rank);
                w.bytes(args);
            }
            Message::InvokeAck { req, pid } => {
                w.u8(TAG_INVOKE_ACK);
                w.u64(req.0);
                w.u32(pid.0);
            }
            Message::ExitNotice { pid, status } => {
                w.u8(TAG_EXIT_NOTICE);
                w.u32(pid.0);
                w.u32(*status as u32);
            }
            Message::TerminateReq { req, pid } => {
                w.u8(TAG_TERMINATE_REQ);
                w.u64(req.0);
                w.u32(pid.0);
            }
            Message::TerminateAck { req } => {
                w.u8(TAG_TERMINATE_ACK);
                w.u64(req.0);
            }
            Message::BarrierEnter { barrier, pid } => {
                w.u8(TAG_BARRIER_ENTER);
                w.u32(*barrier);
                w.u32(pid.0);
            }
            Message::BarrierRelease { barrier, epoch } => {
                w.u8(TAG_BARRIER_RELEASE);
                w.u32(*barrier);
                w.u32(*epoch);
            }
            Message::LockReq { req, lock, pid } => {
                w.u8(TAG_LOCK_REQ);
                w.u64(req.0);
                w.u32(*lock);
                w.u32(pid.0);
            }
            Message::LockGrant { req, lock } => {
                w.u8(TAG_LOCK_GRANT);
                w.u64(req.0);
                w.u32(*lock);
            }
            Message::UnlockReq { lock, pid } => {
                w.u8(TAG_UNLOCK_REQ);
                w.u32(*lock);
                w.u32(pid.0);
            }
            Message::UserData { from, tag, data } => {
                w.u8(TAG_USER_DATA);
                w.u32(from.0);
                w.u32(*tag);
                w.bytes(data);
            }
            Message::Telemetry { pe, seq, payload } => {
                w.u8(TAG_TELEMETRY);
                w.u32(*pe);
                w.u32(*seq);
                w.bytes(payload);
            }
            Message::Abort {
                source,
                code,
                detail,
            } => {
                w.u8(TAG_ABORT);
                w.u32(*source);
                w.u32(*code);
                w.bytes(detail);
            }
            Message::KernelShutdown => {
                w.u8(TAG_KERNEL_SHUTDOWN);
            }
        }
        *out = w.finish();
    }

    /// Exact encoded size in bytes (this is what goes on the wire and what
    /// the network model charges for).
    pub fn wire_len(&self) -> usize {
        1 + match self {
            Message::GmReadReq { .. } => 8 + 4 + 8 + 4,
            Message::GmReadResp { data, .. } => 8 + 4 + data.len(),
            Message::GmWriteReq { data, .. } => 8 + 4 + 8 + 4 + data.len(),
            Message::GmWriteAck { .. } => 8,
            Message::GmFetchAddReq { .. } => 8 + 4 + 8 + 8,
            Message::GmFetchAddResp { .. } => 8 + 8,
            Message::GmBatchReq { ops, .. } => {
                8 + 4 + ops.iter().map(GmOp::wire_len).sum::<usize>()
            }
            Message::GmBatchResp { reads, .. } => {
                8 + 4 + reads.iter().map(|d| 4 + d.len()).sum::<usize>()
            }
            Message::GmInvalidate { .. } => 8 + 4 + 8 + 4,
            Message::GmInvalidateAck { .. } => 8,
            Message::InvokeReq { args, .. } => 8 + 4 + 4 + args.len(),
            Message::InvokeAck { .. } => 8 + 4,
            Message::ExitNotice { .. } => 4 + 4,
            Message::TerminateReq { .. } => 8 + 4,
            Message::TerminateAck { .. } => 8,
            Message::BarrierEnter { .. } => 4 + 4,
            Message::BarrierRelease { .. } => 4 + 4,
            Message::LockReq { .. } => 8 + 4 + 4,
            Message::LockGrant { .. } => 8 + 4,
            Message::UnlockReq { .. } => 4 + 4,
            Message::UserData { data, .. } => 4 + 4 + 4 + data.len(),
            Message::Telemetry { payload, .. } => 4 + 4 + 4 + payload.len(),
            Message::Abort { detail, .. } => 4 + 4 + 4 + detail.len(),
            Message::KernelShutdown => 0,
        }
    }

    /// Decode a message from a complete buffer. The buffer must contain
    /// exactly one message; trailing bytes are an error. Transports that
    /// carry several concatenated messages in one buffer should use
    /// [`Message::decode_prefix`] instead.
    pub fn decode(buf: &[u8]) -> Result<Message, CodecError> {
        let mut r = Reader::new(buf);
        let msg = Self::decode_inner(&mut r, None)?;
        r.expect_end()?;
        Ok(msg)
    }

    /// Decode a message whose payload lives in shared storage: byte-string
    /// fields become zero-copy views of `payload` instead of owned copies.
    /// Byte-for-byte equivalent to [`Message::decode`] over the same
    /// bytes — only the storage of the payload fields differs.
    pub fn decode_shared(payload: &Bytes) -> Result<Message, CodecError> {
        let mut r = Reader::new(payload);
        let msg = Self::decode_inner(&mut r, Some(payload))?;
        r.expect_end()?;
        Ok(msg)
    }

    /// Decode one message from the front of `buf`, returning the message
    /// and the number of bytes it occupied. Unlike [`Message::decode`],
    /// trailing bytes are not an error — they are the next message. This
    /// is the frame-cursor entry point used by streaming transports.
    pub fn decode_prefix(buf: &[u8]) -> Result<(Message, usize), CodecError> {
        let mut r = Reader::new(buf);
        let msg = Self::decode_inner(&mut r, None)?;
        Ok((msg, r.position()))
    }

    fn decode_inner(r: &mut Reader<'_>, share: Option<&Bytes>) -> Result<Message, CodecError> {
        let tag = r.u8()?;
        let msg = match tag {
            TAG_GM_READ_REQ => Message::GmReadReq {
                req: ReqId(r.u64()?),
                region: RegionId(r.u32()?),
                offset: r.u64()?,
                len: r.u32()?,
            },
            TAG_GM_READ_RESP => Message::GmReadResp {
                req: ReqId(r.u64()?),
                data: r.bytes_shared(share)?,
            },
            TAG_GM_WRITE_REQ => Message::GmWriteReq {
                req: ReqId(r.u64()?),
                region: RegionId(r.u32()?),
                offset: r.u64()?,
                data: r.bytes_shared(share)?,
            },
            TAG_GM_WRITE_ACK => Message::GmWriteAck {
                req: ReqId(r.u64()?),
            },
            TAG_GM_FADD_REQ => Message::GmFetchAddReq {
                req: ReqId(r.u64()?),
                region: RegionId(r.u32()?),
                offset: r.u64()?,
                delta: r.i64()?,
            },
            TAG_GM_FADD_RESP => Message::GmFetchAddResp {
                req: ReqId(r.u64()?),
                prev: r.i64()?,
            },
            TAG_GM_BATCH_REQ => {
                let req = ReqId(r.u64()?);
                let n = r.u32()?;
                let mut ops = Vec::with_capacity((n as usize).min(1024));
                for _ in 0..n {
                    let kind = r.u8()?;
                    let region = RegionId(r.u32()?);
                    let offset = r.u64()?;
                    ops.push(match kind {
                        GM_OP_READ => GmOp::Read {
                            region,
                            offset,
                            len: r.u32()?,
                        },
                        GM_OP_WRITE => GmOp::Write {
                            region,
                            offset,
                            data: r.bytes_shared(share)?,
                        },
                        other => return Err(CodecError::BadTag(other)),
                    });
                }
                Message::GmBatchReq { req, ops }
            }
            TAG_GM_BATCH_RESP => {
                let req = ReqId(r.u64()?);
                let n = r.u32()?;
                let mut reads = Vec::with_capacity((n as usize).min(1024));
                for _ in 0..n {
                    reads.push(r.bytes_shared(share)?);
                }
                Message::GmBatchResp { req, reads }
            }
            TAG_GM_INVALIDATE => Message::GmInvalidate {
                req: ReqId(r.u64()?),
                region: RegionId(r.u32()?),
                offset: r.u64()?,
                len: r.u32()?,
            },
            TAG_GM_INVALIDATE_ACK => Message::GmInvalidateAck {
                req: ReqId(r.u64()?),
            },
            TAG_INVOKE_REQ => Message::InvokeReq {
                req: ReqId(r.u64()?),
                rank: r.u32()?,
                args: r.bytes()?,
            },
            TAG_INVOKE_ACK => Message::InvokeAck {
                req: ReqId(r.u64()?),
                pid: GlobalPid(r.u32()?),
            },
            TAG_EXIT_NOTICE => Message::ExitNotice {
                pid: GlobalPid(r.u32()?),
                status: r.u32()? as i32,
            },
            TAG_TERMINATE_REQ => Message::TerminateReq {
                req: ReqId(r.u64()?),
                pid: GlobalPid(r.u32()?),
            },
            TAG_TERMINATE_ACK => Message::TerminateAck {
                req: ReqId(r.u64()?),
            },
            TAG_BARRIER_ENTER => Message::BarrierEnter {
                barrier: r.u32()?,
                pid: GlobalPid(r.u32()?),
            },
            TAG_BARRIER_RELEASE => Message::BarrierRelease {
                barrier: r.u32()?,
                epoch: r.u32()?,
            },
            TAG_LOCK_REQ => Message::LockReq {
                req: ReqId(r.u64()?),
                lock: r.u32()?,
                pid: GlobalPid(r.u32()?),
            },
            TAG_LOCK_GRANT => Message::LockGrant {
                req: ReqId(r.u64()?),
                lock: r.u32()?,
            },
            TAG_UNLOCK_REQ => Message::UnlockReq {
                lock: r.u32()?,
                pid: GlobalPid(r.u32()?),
            },
            TAG_USER_DATA => Message::UserData {
                from: GlobalPid(r.u32()?),
                tag: r.u32()?,
                data: r.bytes()?,
            },
            TAG_TELEMETRY => Message::Telemetry {
                pe: r.u32()?,
                seq: r.u32()?,
                payload: r.bytes()?,
            },
            TAG_ABORT => Message::Abort {
                source: r.u32()?,
                code: r.u32()?,
                detail: r.bytes()?,
            },
            TAG_KERNEL_SHUTDOWN => Message::KernelShutdown,
            other => return Err(CodecError::BadTag(other)),
        };
        Ok(msg)
    }

    /// True for messages that expect a correlated response.
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            Message::GmReadReq { .. }
                | Message::GmWriteReq { .. }
                | Message::GmBatchReq { .. }
                | Message::GmFetchAddReq { .. }
                | Message::InvokeReq { .. }
                | Message::TerminateReq { .. }
                | Message::LockReq { .. }
        )
    }

    /// Stable short label naming the message kind (used by trace and
    /// flight-recorder exports; never includes payload contents).
    pub fn label(&self) -> &'static str {
        match self {
            Message::GmReadReq { .. } => "gm_read_req",
            Message::GmReadResp { .. } => "gm_read_resp",
            Message::GmWriteReq { .. } => "gm_write_req",
            Message::GmWriteAck { .. } => "gm_write_ack",
            Message::GmFetchAddReq { .. } => "gm_fetch_add_req",
            Message::GmFetchAddResp { .. } => "gm_fetch_add_resp",
            Message::GmBatchReq { .. } => "gm_batch_req",
            Message::GmBatchResp { .. } => "gm_batch_resp",
            Message::GmInvalidate { .. } => "gm_invalidate",
            Message::GmInvalidateAck { .. } => "gm_invalidate_ack",
            Message::InvokeReq { .. } => "invoke_req",
            Message::InvokeAck { .. } => "invoke_ack",
            Message::ExitNotice { .. } => "exit_notice",
            Message::TerminateReq { .. } => "terminate_req",
            Message::TerminateAck { .. } => "terminate_ack",
            Message::BarrierEnter { .. } => "barrier_enter",
            Message::BarrierRelease { .. } => "barrier_release",
            Message::LockReq { .. } => "lock_req",
            Message::LockGrant { .. } => "lock_grant",
            Message::UnlockReq { .. } => "unlock_req",
            Message::UserData { .. } => "user_data",
            Message::Telemetry { .. } => "telemetry",
            Message::Abort { .. } => "abort",
            Message::KernelShutdown => "kernel_shutdown",
        }
    }

    /// The correlation id, if this message carries one.
    pub fn req_id(&self) -> Option<ReqId> {
        match self {
            Message::GmReadReq { req, .. }
            | Message::GmReadResp { req, .. }
            | Message::GmWriteReq { req, .. }
            | Message::GmWriteAck { req }
            | Message::GmBatchReq { req, .. }
            | Message::GmBatchResp { req, .. }
            | Message::GmFetchAddReq { req, .. }
            | Message::GmFetchAddResp { req, .. }
            | Message::InvokeReq { req, .. }
            | Message::InvokeAck { req, .. }
            | Message::TerminateReq { req, .. }
            | Message::TerminateAck { req }
            | Message::LockReq { req, .. }
            | Message::LockGrant { req, .. }
            | Message::GmInvalidate { req, .. }
            | Message::GmInvalidateAck { req } => Some(*req),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Message> {
        vec![
            Message::GmReadReq {
                req: ReqId(1),
                region: RegionId(2),
                offset: 3,
                len: 4,
            },
            Message::GmReadResp {
                req: ReqId(1),
                data: vec![1, 2, 3].into(),
            },
            Message::GmWriteReq {
                req: ReqId(9),
                region: RegionId(0),
                offset: 1024,
                data: vec![0; 17].into(),
            },
            Message::GmWriteAck { req: ReqId(9) },
            Message::GmFetchAddReq {
                req: ReqId(5),
                region: RegionId(7),
                offset: 8,
                delta: -3,
            },
            Message::GmFetchAddResp {
                req: ReqId(5),
                prev: 41,
            },
            Message::GmInvalidate {
                req: ReqId(21),
                region: RegionId(3),
                offset: 64,
                len: 128,
            },
            Message::GmInvalidateAck { req: ReqId(21) },
            Message::GmBatchReq {
                req: ReqId(30),
                ops: vec![
                    GmOp::Write {
                        region: RegionId(1),
                        offset: 0,
                        data: vec![5; 24].into(),
                    },
                    GmOp::Read {
                        region: RegionId(1),
                        offset: 8,
                        len: 16,
                    },
                    GmOp::Write {
                        region: RegionId(2),
                        offset: 512,
                        data: vec![].into(),
                    },
                ],
            },
            Message::GmBatchResp {
                req: ReqId(30),
                reads: vec![vec![9; 16].into()],
            },
            Message::InvokeReq {
                req: ReqId(11),
                rank: 4,
                args: b"argv".to_vec(),
            },
            Message::InvokeAck {
                req: ReqId(11),
                pid: GlobalPid::new(crate::ids::NodeId(2), 5),
            },
            Message::ExitNotice {
                pid: GlobalPid(77),
                status: -1,
            },
            Message::TerminateReq {
                req: ReqId(12),
                pid: GlobalPid(77),
            },
            Message::TerminateAck { req: ReqId(12) },
            Message::BarrierEnter {
                barrier: 1,
                pid: GlobalPid(3),
            },
            Message::BarrierRelease {
                barrier: 1,
                epoch: 9,
            },
            Message::LockReq {
                req: ReqId(13),
                lock: 2,
                pid: GlobalPid(3),
            },
            Message::LockGrant {
                req: ReqId(13),
                lock: 2,
            },
            Message::UnlockReq {
                lock: 2,
                pid: GlobalPid(3),
            },
            Message::UserData {
                from: GlobalPid(4),
                tag: 99,
                data: vec![7; 1500],
            },
            Message::Telemetry {
                pe: 3,
                seq: 42,
                payload: vec![0xAB; 60],
            },
            Message::Abort {
                source: 2,
                code: 1,
                detail: b"peer 3 dropped".to_vec(),
            },
            Message::KernelShutdown,
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for msg in samples() {
            let buf = msg.encode();
            assert_eq!(buf.len(), msg.wire_len(), "wire_len mismatch for {msg:?}");
            let back = Message::decode(&buf).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert_eq!(Message::decode(&[0xEE]), Err(CodecError::BadTag(0xEE)));
    }

    #[test]
    fn truncated_rejected() {
        let buf = samples()[0].encode();
        assert!(Message::decode(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn trailing_rejected() {
        let mut buf = samples()[0].encode();
        buf.push(0);
        assert_eq!(Message::decode(&buf), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn request_classification() {
        assert!(samples()[0].is_request());
        assert!(!Message::KernelShutdown.is_request());
        assert!(!samples()[1].is_request()); // responses are not requests
    }

    #[test]
    fn req_id_extraction() {
        assert_eq!(samples()[0].req_id(), Some(ReqId(1)));
        assert_eq!(Message::KernelShutdown.req_id(), None);
        assert_eq!(
            Message::UserData {
                from: GlobalPid(1),
                tag: 0,
                data: vec![]
            }
            .req_id(),
            None
        );
    }

    #[test]
    fn telemetry_is_not_a_request_and_has_no_req_id() {
        let msg = Message::Telemetry {
            pe: 1,
            seq: 7,
            payload: vec![1, 2, 3],
        };
        assert!(!msg.is_request());
        assert_eq!(msg.req_id(), None);
        assert_eq!(msg.label(), "telemetry");
    }

    #[test]
    fn abort_is_not_a_request_and_has_no_req_id() {
        let msg = Message::Abort {
            source: 1,
            code: 2,
            detail: vec![],
        };
        assert!(!msg.is_request());
        assert_eq!(msg.req_id(), None);
        assert_eq!(msg.label(), "abort");
    }

    #[test]
    fn labels_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for msg in samples() {
            assert!(seen.insert(msg.label()), "duplicate label {}", msg.label());
        }
    }

    #[test]
    fn batch_req_bad_op_kind_rejected() {
        let msg = Message::GmBatchReq {
            req: ReqId(1),
            ops: vec![GmOp::Read {
                region: RegionId(0),
                offset: 0,
                len: 8,
            }],
        };
        let mut buf = msg.encode();
        buf[13] = 0x5A; // corrupt the op-kind byte
        assert_eq!(Message::decode(&buf), Err(CodecError::BadTag(0x5A)));
    }

    #[test]
    fn empty_batch_roundtrips() {
        let msg = Message::GmBatchReq {
            req: ReqId(2),
            ops: vec![],
        };
        assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        let resp = Message::GmBatchResp {
            req: ReqId(2),
            reads: vec![],
        };
        assert_eq!(Message::decode(&resp.encode()).unwrap(), resp);
        assert!(msg.is_request() && !resp.is_request());
    }

    #[test]
    fn negative_status_roundtrips() {
        let msg = Message::ExitNotice {
            pid: GlobalPid(1),
            status: -37,
        };
        let back = Message::decode(&msg.encode()).unwrap();
        assert_eq!(back, msg);
    }
}
