//! Identifier types shared across the DSE runtime.

use std::fmt;

/// A node (processor element) in the cluster. One DSE kernel runs per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A cluster-wide (single-system-image) process identifier.
///
/// DSE presents one flat process-id space across the cluster: the top half
/// names the node that hosts the process, the bottom half is the node-local
/// slot. Applications never need to decompose it — that is the point of the
/// SSI — but the runtime can.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalPid(pub u32);

impl GlobalPid {
    /// Compose from hosting node and node-local slot.
    #[inline]
    pub fn new(node: NodeId, local: u16) -> GlobalPid {
        GlobalPid(((node.0 as u32) << 16) | local as u32)
    }

    /// The node hosting this process.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId((self.0 >> 16) as u16)
    }

    /// The node-local slot.
    #[inline]
    pub fn local(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }
}

impl fmt::Display for GlobalPid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpid({}:{})", self.node().0, self.local())
    }
}

/// A global-memory region handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gm{}", self.0)
    }
}

/// Correlates a request with its response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u64);

/// Monotonic allocator for [`ReqId`]s (one per requesting process).
#[derive(Debug, Default)]
pub struct ReqIdGen {
    next: u64,
}

impl ReqIdGen {
    /// A fresh generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next id.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> ReqId {
        let id = ReqId(self.next);
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpid_packs_and_unpacks() {
        let pid = GlobalPid::new(NodeId(3), 17);
        assert_eq!(pid.node(), NodeId(3));
        assert_eq!(pid.local(), 17);
    }

    #[test]
    fn gpid_extremes() {
        let pid = GlobalPid::new(NodeId(u16::MAX), u16::MAX);
        assert_eq!(pid.node(), NodeId(u16::MAX));
        assert_eq!(pid.local(), u16::MAX);
        let zero = GlobalPid::new(NodeId(0), 0);
        assert_eq!(zero.0, 0);
    }

    #[test]
    fn reqid_gen_monotonic() {
        let mut g = ReqIdGen::new();
        assert_eq!(g.next(), ReqId(0));
        assert_eq!(g.next(), ReqId(1));
        assert_eq!(g.next(), ReqId(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(GlobalPid::new(NodeId(1), 2).to_string(), "gpid(1:2)");
        assert_eq!(RegionId(9).to_string(), "gm9");
    }
}
