//! A hand-rolled ref-counted byte slice for zero-copy payload plumbing.
//!
//! The wire hot path used to materialize an owned `Vec<u8>` at every
//! layer: the frame decoder copied each payload out of its reassembly
//! buffer, the message decoder copied each byte-string field out of the
//! payload, and the GM completion path copied the field into the staging
//! buffer. [`Bytes`] collapses the middle copies: it is a `(Arc<Vec<u8>>,
//! offset, length)` triple, so slicing is a refcount bump and the bytes
//! themselves are written exactly once per hop. This is the same layout as
//! the `bytes` crate's `Bytes`, hand-rolled because the repo vendors no
//! new dependencies.
//!
//! Allocation-free steady state falls out of the refcount: once every
//! view into a decoder's reassembly buffer is dropped, the decoder sees a
//! unique `Arc` again and appends in place instead of reallocating.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable view into shared byte storage.
#[derive(Clone, Default)]
pub struct Bytes {
    buf: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty slice (no allocation beyond the shared empty `Arc`).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap an owned vector without copying it.
    pub fn from_vec(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            buf: Arc::new(v),
            off: 0,
            len,
        }
    }

    /// A view over `len` bytes of `buf` starting at `off`.
    ///
    /// # Panics
    ///
    /// Panics when the range falls outside `buf`.
    pub fn from_arc(buf: Arc<Vec<u8>>, off: usize, len: usize) -> Bytes {
        assert!(off + len <= buf.len(), "Bytes range out of bounds");
        Bytes { buf, off, len }
    }

    /// Copy a borrowed slice into fresh shared storage.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from_vec(s.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view of `len` bytes starting at `at` — a refcount bump, not
    /// a copy.
    ///
    /// # Panics
    ///
    /// Panics when the range falls outside this view.
    pub fn slice(&self, at: usize, len: usize) -> Bytes {
        assert!(at + len <= self.len, "Bytes::slice out of bounds");
        Bytes {
            buf: Arc::clone(&self.buf),
            off: self.off + at,
            len,
        }
    }

    /// Recover the owned vector: without copying when this is the only
    /// view over the whole buffer, by copy otherwise.
    pub fn into_vec(self) -> Vec<u8> {
        if self.off == 0 {
            match Arc::try_unwrap(self.buf) {
                Ok(mut v) => {
                    v.truncate(self.len);
                    return v;
                }
                Err(buf) => return buf[..self.len].to_vec(),
            }
        }
        self.as_slice().to_vec()
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.into_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_shares_storage() {
        let b = Bytes::from_vec(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1, 3);
        assert_eq!(s, [2, 3, 4]);
        let ss = s.slice(2, 1);
        assert_eq!(ss, [4]);
        assert_eq!(Arc::strong_count(&b.buf), 3);
    }

    #[test]
    fn into_vec_avoids_copy_when_unique() {
        let v = vec![7u8; 32];
        let ptr = v.as_ptr();
        let back = Bytes::from_vec(v).into_vec();
        assert_eq!(back.as_ptr(), ptr);
        assert_eq!(back, vec![7u8; 32]);
    }

    #[test]
    fn into_vec_copies_shared_or_offset_views() {
        let b = Bytes::from_vec(vec![1, 2, 3, 4]);
        let s = b.slice(2, 2);
        assert_eq!(s.into_vec(), vec![3, 4]);
        let c = b.clone();
        assert_eq!(c.into_vec(), vec![1, 2, 3, 4]);
        assert_eq!(b, [1, 2, 3, 4]);
    }

    #[test]
    fn equality_across_representations() {
        let b = Bytes::from(&b"abc"[..]);
        assert_eq!(b, *b"abc");
        assert_eq!(b, b"abc".to_vec());
        assert_eq!(b, Bytes::from_vec(b"abc".to_vec()));
        assert!(b != Bytes::new());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_slice_panics() {
        Bytes::from_vec(vec![0; 4]).slice(2, 3);
    }
}
