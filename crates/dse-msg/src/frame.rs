//! Length-prefixed framing for stream transports.
//!
//! The simulator delivers one encoded [`Message`] per simulated packet, so
//! message boundaries are implicit. A byte stream (TCP, Unix socket, or an
//! in-process pipe that models one) has no boundaries, so the live engine
//! wraps every message in a small frame:
//!
//! ```text
//! [u32 payload_len][u8 kind][u64 seq][payload: payload_len bytes]
//! ```
//!
//! * `payload_len` — length of the payload that follows the fixed header
//!   (little-endian, bounded by [`MAX_PAYLOAD`]);
//! * `kind` — [`FRAME_MSG`] for an encoded [`Message`], [`FRAME_BYE`] for
//!   the clean-shutdown handshake (empty payload). A peer that closes its
//!   stream *without* sending `Bye` is treated as dropped;
//! * `seq` — per-(sender → receiver) sequence number starting at 0 and
//!   incrementing by one per frame. Receivers verify continuity so a
//!   reordered or half-duplicated stream is caught immediately instead of
//!   corrupting global memory silently.
//!
//! [`FrameDecoder`] is the incremental counterpart: bytes arrive in
//! whatever chunks the kernel hands us and frames are reassembled across
//! chunk boundaries — concatenated frames in one read and a frame split
//! over many reads both decode to the same event stream.

use crate::codec::{CodecError, Reader, Writer, MAX_PAYLOAD};
use crate::message::Message;

/// Frame kind byte: the payload is one encoded [`Message`].
pub const FRAME_MSG: u8 = 0;
/// Frame kind byte: clean-shutdown handshake, empty payload.
pub const FRAME_BYE: u8 = 1;

/// Fixed bytes before the payload: u32 length + u8 kind + u64 seq.
pub const FRAME_HEADER_LEN: usize = 4 + 1 + 8;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameEvent {
    /// A message frame.
    Msg {
        /// Per-stream sequence number.
        seq: u64,
        /// The decoded message.
        msg: Message,
    },
    /// The peer announced a clean shutdown.
    Bye {
        /// Per-stream sequence number.
        seq: u64,
    },
}

/// Encode `msg` as one message frame with sequence number `seq`.
pub fn encode_frame(seq: u64, msg: &Message) -> Vec<u8> {
    let payload = msg.encode();
    let mut w = Writer::with_capacity(FRAME_HEADER_LEN + payload.len());
    w.u32(payload.len() as u32);
    w.u8(FRAME_MSG);
    w.u64(seq);
    let mut buf = w.finish();
    buf.extend_from_slice(&payload);
    buf
}

/// Encode a `Bye` (clean shutdown) frame with sequence number `seq`.
pub fn encode_bye(seq: u64) -> Vec<u8> {
    let mut w = Writer::with_capacity(FRAME_HEADER_LEN);
    w.u32(0);
    w.u8(FRAME_BYE);
    w.u64(seq);
    w.finish()
}

/// Incremental frame reassembler for one receive direction of a stream.
///
/// Feed raw bytes with [`push`](FrameDecoder::push) as they arrive, then
/// drain complete frames with [`next_frame`](FrameDecoder::next_frame) until it
/// returns `Ok(None)` (meaning: need more bytes).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

impl FrameDecoder {
    /// Fresh decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append newly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, so long-lived streams
        // don't accumulate dead bytes.
        if self.start > 0 && (self.start >= 4096 || self.start == self.buf.len()) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True if a partial frame is sitting in the buffer — used to tell a
    /// clean EOF from a connection cut mid-frame.
    pub fn has_partial(&self) -> bool {
        self.buffered() > 0
    }

    /// Try to decode the next complete frame. `Ok(None)` means more bytes
    /// are needed; errors are fatal for the stream (corrupt framing).
    pub fn next_frame(&mut self) -> Result<Option<FrameEvent>, CodecError> {
        let pending = &self.buf[self.start..];
        if pending.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let mut r = Reader::new(pending);
        let payload_len = r.u32()? as usize;
        if payload_len > MAX_PAYLOAD {
            return Err(CodecError::BadLength(payload_len as u64));
        }
        let kind = r.u8()?;
        let seq = r.u64()?;
        if pending.len() < FRAME_HEADER_LEN + payload_len {
            return Ok(None);
        }
        let payload = &pending[FRAME_HEADER_LEN..FRAME_HEADER_LEN + payload_len];
        let event = match kind {
            FRAME_MSG => FrameEvent::Msg {
                seq,
                msg: Message::decode(payload)?,
            },
            FRAME_BYE => {
                if payload_len != 0 {
                    return Err(CodecError::BadLength(payload_len as u64));
                }
                FrameEvent::Bye { seq }
            }
            other => return Err(CodecError::BadTag(other)),
        };
        self.start += FRAME_HEADER_LEN + payload_len;
        Ok(Some(event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{RegionId, ReqId};

    fn sample_msg(i: u64) -> Message {
        Message::GmReadReq {
            req: ReqId(i),
            region: RegionId(7),
            offset: i * 8,
            len: 64,
        }
    }

    #[test]
    fn frame_roundtrip_single() {
        let msg = sample_msg(1);
        let buf = encode_frame(42, &msg);
        let mut d = FrameDecoder::new();
        d.push(&buf);
        assert_eq!(
            d.next_frame().unwrap(),
            Some(FrameEvent::Msg { seq: 42, msg })
        );
        assert_eq!(d.next_frame().unwrap(), None);
        assert!(!d.has_partial());
    }

    #[test]
    fn concatenated_frames_decode_in_order() {
        let mut buf = Vec::new();
        for i in 0..5u64 {
            buf.extend_from_slice(&encode_frame(i, &sample_msg(i)));
        }
        let mut d = FrameDecoder::new();
        d.push(&buf);
        for i in 0..5u64 {
            match d.next_frame().unwrap() {
                Some(FrameEvent::Msg { seq, msg }) => {
                    assert_eq!(seq, i);
                    assert_eq!(msg, sample_msg(i));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(d.next_frame().unwrap(), None);
    }

    #[test]
    fn split_delivery_reassembles() {
        let frame = encode_frame(0, &sample_msg(9));
        let mut d = FrameDecoder::new();
        // Byte-at-a-time delivery: no frame until the last byte lands.
        for (i, b) in frame.iter().enumerate() {
            d.push(std::slice::from_ref(b));
            if i + 1 < frame.len() {
                assert_eq!(d.next_frame().unwrap(), None, "premature frame at byte {i}");
            }
        }
        assert!(matches!(
            d.next_frame().unwrap(),
            Some(FrameEvent::Msg { seq: 0, .. })
        ));
    }

    #[test]
    fn bye_frame_roundtrip() {
        let mut d = FrameDecoder::new();
        d.push(&encode_bye(3));
        assert_eq!(d.next_frame().unwrap(), Some(FrameEvent::Bye { seq: 3 }));
    }

    #[test]
    fn bad_kind_rejected() {
        let mut raw = encode_bye(0);
        raw[4] = 0x77; // corrupt the kind byte
        let mut d = FrameDecoder::new();
        d.push(&raw);
        assert_eq!(d.next_frame(), Err(CodecError::BadTag(0x77)));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        w.u8(FRAME_MSG);
        w.u64(0);
        let mut d = FrameDecoder::new();
        d.push(&w.finish());
        assert!(matches!(d.next_frame(), Err(CodecError::BadLength(_))));
    }

    #[test]
    fn buffer_compaction_does_not_lose_frames() {
        let mut d = FrameDecoder::new();
        // Enough frames to force the drain path several times over.
        for round in 0..200u64 {
            d.push(&encode_frame(round, &sample_msg(round)));
            match d.next_frame().unwrap() {
                Some(FrameEvent::Msg { seq, .. }) => assert_eq!(seq, round),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(!d.has_partial());
    }
}
