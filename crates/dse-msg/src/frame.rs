//! Length-prefixed framing for stream transports.
//!
//! The simulator delivers one encoded [`Message`] per simulated packet, so
//! message boundaries are implicit. A byte stream (TCP, Unix socket, or an
//! in-process pipe that models one) has no boundaries, so the live engine
//! wraps every message in a small frame:
//!
//! ```text
//! [u32 payload_len][u8 kind][u64 seq][payload: payload_len bytes]
//! ```
//!
//! * `payload_len` — length of the payload that follows the fixed header
//!   (little-endian, bounded by [`MAX_PAYLOAD`]);
//! * `kind` — [`FRAME_MSG`] for an encoded [`Message`], [`FRAME_BYE`] for
//!   the clean-shutdown handshake (empty payload). A peer that closes its
//!   stream *without* sending `Bye` is treated as dropped;
//! * `seq` — per-(sender → receiver) sequence number starting at 0 and
//!   incrementing by one per frame. Receivers verify continuity so a
//!   reordered or half-duplicated stream is caught immediately instead of
//!   corrupting global memory silently.
//!
//! When causal tracing is on, a message travels as a [`FRAME_MSG_TRACED`]
//! frame instead: the payload is prefixed with a small self-describing
//! trace-context extension —
//!
//! ```text
//! [u8 ext_len][u8 version=1][u64 trace_id][u64 parent_span][message payload]
//! ```
//!
//! The extension is *advisory*: a receiver that does not understand the
//! version (or finds the extension malformed) skips `ext_len` bytes, drops
//! the context, bumps [`dropped_trace_ctx`](FrameDecoder::dropped_trace_ctx)
//! and still decodes the message — a corrupt or future-version extension
//! never poisons the message it rides on. When tracing is off the plain
//! [`FRAME_MSG`] framing is byte-identical to the pre-extension format, so
//! the feature costs nothing on the wire for untraced runs and old frames
//! decode unchanged.
//!
//! [`FrameDecoder`] is the incremental counterpart: bytes arrive in
//! whatever chunks the kernel hands us and frames are reassembled across
//! chunk boundaries — concatenated frames in one read and a frame split
//! over many reads both decode to the same event stream.

use std::sync::Arc;

use crate::bytes::Bytes;
use crate::codec::{CodecError, Reader, MAX_PAYLOAD};
use crate::message::Message;

/// Frame kind byte: the payload is one encoded [`Message`].
pub const FRAME_MSG: u8 = 0;
/// Frame kind byte: clean-shutdown handshake, empty payload.
pub const FRAME_BYE: u8 = 1;
/// Frame kind byte: a trace-context extension followed by one encoded
/// [`Message`].
pub const FRAME_MSG_TRACED: u8 = 2;

/// Fixed bytes before the payload: u32 length + u8 kind + u64 seq.
pub const FRAME_HEADER_LEN: usize = 4 + 1 + 8;

/// Trace-context extension version this codec emits.
pub const TRACE_EXT_VERSION: u8 = 1;
/// Byte length of a v1 trace-context extension: version + two span ids.
pub const TRACE_EXT_LEN: usize = 1 + 8 + 8;

/// Causal trace context carried alongside a message on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace this message belongs to (the root span's id).
    pub trace: u64,
    /// Span that caused this message (the receiver's parent span).
    pub parent: u64,
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameEvent {
    /// A message frame.
    Msg {
        /// Per-stream sequence number.
        seq: u64,
        /// The decoded message.
        msg: Message,
        /// Trace context, if the sender attached one and it survived.
        ctx: Option<TraceCtx>,
    },
    /// The peer announced a clean shutdown.
    Bye {
        /// Per-stream sequence number.
        seq: u64,
    },
}

/// Append one message frame with sequence number `seq` to `buf`.
///
/// The payload is encoded straight into the frame buffer ([`Message::wire_len`]
/// is exact, so the length prefix is written up front) — no intermediate
/// payload `Vec`, and a pooled `buf` makes the whole send allocation-free.
pub fn encode_frame_into(buf: &mut Vec<u8>, seq: u64, msg: &Message) {
    let plen = msg.wire_len();
    buf.reserve(FRAME_HEADER_LEN + plen);
    buf.extend_from_slice(&(plen as u32).to_le_bytes());
    buf.push(FRAME_MSG);
    buf.extend_from_slice(&seq.to_le_bytes());
    msg.encode_into(buf);
}

/// Append one frame to `buf`, attaching `ctx` when present. With
/// `ctx == None` this is exactly [`encode_frame_into`] — untraced runs pay
/// nothing on the wire.
pub fn encode_frame_ctx_into(buf: &mut Vec<u8>, seq: u64, msg: &Message, ctx: Option<TraceCtx>) {
    let Some(ctx) = ctx else {
        return encode_frame_into(buf, seq, msg);
    };
    let total = 1 + TRACE_EXT_LEN + msg.wire_len();
    buf.reserve(FRAME_HEADER_LEN + total);
    buf.extend_from_slice(&(total as u32).to_le_bytes());
    buf.push(FRAME_MSG_TRACED);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.push(TRACE_EXT_LEN as u8);
    buf.push(TRACE_EXT_VERSION);
    buf.extend_from_slice(&ctx.trace.to_le_bytes());
    buf.extend_from_slice(&ctx.parent.to_le_bytes());
    msg.encode_into(buf);
}

/// Append a `Bye` (clean shutdown) frame with sequence number `seq`.
pub fn encode_bye_into(buf: &mut Vec<u8>, seq: u64) {
    buf.reserve(FRAME_HEADER_LEN);
    buf.extend_from_slice(&0u32.to_le_bytes());
    buf.push(FRAME_BYE);
    buf.extend_from_slice(&seq.to_le_bytes());
}

/// Encode `msg` as one message frame with sequence number `seq`.
pub fn encode_frame(seq: u64, msg: &Message) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + msg.wire_len());
    encode_frame_into(&mut buf, seq, msg);
    buf
}

/// Encode `msg` as one frame into a fresh buffer, attaching `ctx` when
/// present.
pub fn encode_frame_ctx(seq: u64, msg: &Message, ctx: Option<TraceCtx>) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_frame_ctx_into(&mut buf, seq, msg, ctx);
    buf
}

/// Encode a `Bye` (clean shutdown) frame with sequence number `seq`.
pub fn encode_bye(seq: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN);
    encode_bye_into(&mut buf, seq);
    buf
}

/// Consumed-prefix length that triggers compaction of the reassembly
/// buffer on the next [`FrameDecoder::push`].
const COMPACT_AT: usize = 4096;

/// Capacity high-water mark for the reassembly buffer: after a burst of
/// large frames (a big GM batch response), capacity above this is released
/// once the buffered remainder fits comfortably below it. Without the cap
/// every per-peer decoder quietly pins the largest frame it ever saw — at
/// 1,024 PEs that is real memory creep.
pub const DECODER_HIGH_WATER: usize = 64 * 1024;

/// Incremental frame reassembler for one receive direction of a stream.
///
/// Feed raw bytes with [`push`](FrameDecoder::push) as they arrive, then
/// drain complete frames with [`next_frame`](FrameDecoder::next_frame) until it
/// returns `Ok(None)` (meaning: need more bytes).
///
/// The reassembly buffer is shared storage: decoded messages' payload
/// fields are [`Bytes`] views into it, so draining a frame copies nothing.
/// Once those views drop, the buffer is unique again and the next `push`
/// appends in place — the steady-state receive path allocates nothing.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Arc<Vec<u8>>,
    start: usize,
    dropped_trace_ctx: u64,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder {
            buf: Arc::new(Vec::new()),
            start: 0,
            dropped_trace_ctx: 0,
        }
    }
}

impl FrameDecoder {
    /// Fresh decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trace-context extensions this stream dropped because they were
    /// malformed or of an unknown version. The messages themselves were
    /// decoded normally.
    pub fn dropped_trace_ctx(&self) -> u64 {
        self.dropped_trace_ctx
    }

    /// Append newly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        match Arc::get_mut(&mut self.buf) {
            Some(v) => {
                // Reclaim consumed prefix before growing, so long-lived
                // streams don't accumulate dead bytes.
                if self.start > 0 && (self.start >= COMPACT_AT || self.start == v.len()) {
                    v.drain(..self.start);
                    self.start = 0;
                }
                // Release capacity pinned by a past large frame once the
                // live remainder is small again.
                if v.capacity() > DECODER_HIGH_WATER
                    && v.len() + bytes.len() <= DECODER_HIGH_WATER / 2
                {
                    v.shrink_to(DECODER_HIGH_WATER / 2);
                }
                v.extend_from_slice(bytes);
            }
            None => {
                // Earlier frames' payload views still pin the buffer:
                // leave it to them and restart from the unconsumed tail.
                let tail = &self.buf[self.start..];
                let mut v = Vec::with_capacity(tail.len() + bytes.len());
                v.extend_from_slice(tail);
                v.extend_from_slice(bytes);
                self.buf = Arc::new(v);
                self.start = 0;
            }
        }
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Current capacity of the reassembly buffer (observability for the
    /// high-water shrink policy).
    pub fn buffer_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// True if a partial frame is sitting in the buffer — used to tell a
    /// clean EOF from a connection cut mid-frame.
    pub fn has_partial(&self) -> bool {
        self.buffered() > 0
    }

    /// Try to decode the next complete frame. `Ok(None)` means more bytes
    /// are needed; errors are fatal for the stream (corrupt framing).
    pub fn next_frame(&mut self) -> Result<Option<FrameEvent>, CodecError> {
        let pending = &self.buf[self.start..];
        if pending.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let mut r = Reader::new(pending);
        let payload_len = r.u32()? as usize;
        if payload_len > MAX_PAYLOAD {
            return Err(CodecError::BadLength(payload_len as u64));
        }
        let kind = r.u8()?;
        let seq = r.u64()?;
        if pending.len() < FRAME_HEADER_LEN + payload_len {
            return Ok(None);
        }
        let payload_at = self.start + FRAME_HEADER_LEN;
        let payload = &pending[FRAME_HEADER_LEN..FRAME_HEADER_LEN + payload_len];
        let event = match kind {
            FRAME_MSG => {
                let body = Bytes::from_arc(Arc::clone(&self.buf), payload_at, payload_len);
                FrameEvent::Msg {
                    seq,
                    msg: Message::decode_shared(&body)?,
                    ctx: None,
                }
            }
            FRAME_MSG_TRACED => {
                // [u8 ext_len][ext][message]. A truncated ext_len makes the
                // message boundary unrecoverable — that is fatal framing
                // corruption. A well-delimited but unintelligible extension
                // (wrong version, wrong size) is merely dropped.
                if payload_len == 0 {
                    return Err(CodecError::BadLength(0));
                }
                let ext_len = payload[0] as usize;
                if 1 + ext_len > payload_len {
                    return Err(CodecError::BadLength(ext_len as u64));
                }
                let ext = &payload[1..1 + ext_len];
                let ctx = if ext_len == TRACE_EXT_LEN && ext[0] == TRACE_EXT_VERSION {
                    let mut r = Reader::new(&ext[1..]);
                    let trace = r.u64()?;
                    let parent = r.u64()?;
                    Some(TraceCtx { trace, parent })
                } else {
                    self.dropped_trace_ctx += 1;
                    None
                };
                let body = Bytes::from_arc(
                    Arc::clone(&self.buf),
                    payload_at + 1 + ext_len,
                    payload_len - 1 - ext_len,
                );
                FrameEvent::Msg {
                    seq,
                    msg: Message::decode_shared(&body)?,
                    ctx,
                }
            }
            FRAME_BYE => {
                if payload_len != 0 {
                    return Err(CodecError::BadLength(payload_len as u64));
                }
                FrameEvent::Bye { seq }
            }
            other => return Err(CodecError::BadTag(other)),
        };
        self.start += FRAME_HEADER_LEN + payload_len;
        Ok(Some(event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Writer;
    use crate::ids::{RegionId, ReqId};

    fn sample_msg(i: u64) -> Message {
        Message::GmReadReq {
            req: ReqId(i),
            region: RegionId(7),
            offset: i * 8,
            len: 64,
        }
    }

    #[test]
    fn frame_roundtrip_single() {
        let msg = sample_msg(1);
        let buf = encode_frame(42, &msg);
        let mut d = FrameDecoder::new();
        d.push(&buf);
        assert_eq!(
            d.next_frame().unwrap(),
            Some(FrameEvent::Msg {
                seq: 42,
                msg,
                ctx: None
            })
        );
        assert_eq!(d.next_frame().unwrap(), None);
        assert!(!d.has_partial());
    }

    #[test]
    fn concatenated_frames_decode_in_order() {
        let mut buf = Vec::new();
        for i in 0..5u64 {
            buf.extend_from_slice(&encode_frame(i, &sample_msg(i)));
        }
        let mut d = FrameDecoder::new();
        d.push(&buf);
        for i in 0..5u64 {
            match d.next_frame().unwrap() {
                Some(FrameEvent::Msg { seq, msg, ctx }) => {
                    assert_eq!(seq, i);
                    assert_eq!(msg, sample_msg(i));
                    assert_eq!(ctx, None);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(d.next_frame().unwrap(), None);
    }

    #[test]
    fn split_delivery_reassembles() {
        let frame = encode_frame(0, &sample_msg(9));
        let mut d = FrameDecoder::new();
        // Byte-at-a-time delivery: no frame until the last byte lands.
        for (i, b) in frame.iter().enumerate() {
            d.push(std::slice::from_ref(b));
            if i + 1 < frame.len() {
                assert_eq!(d.next_frame().unwrap(), None, "premature frame at byte {i}");
            }
        }
        assert!(matches!(
            d.next_frame().unwrap(),
            Some(FrameEvent::Msg { seq: 0, .. })
        ));
    }

    #[test]
    fn bye_frame_roundtrip() {
        let mut d = FrameDecoder::new();
        d.push(&encode_bye(3));
        assert_eq!(d.next_frame().unwrap(), Some(FrameEvent::Bye { seq: 3 }));
    }

    #[test]
    fn bad_kind_rejected() {
        let mut raw = encode_bye(0);
        raw[4] = 0x77; // corrupt the kind byte
        let mut d = FrameDecoder::new();
        d.push(&raw);
        assert_eq!(d.next_frame(), Err(CodecError::BadTag(0x77)));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        w.u8(FRAME_MSG);
        w.u64(0);
        let mut d = FrameDecoder::new();
        d.push(&w.finish());
        assert!(matches!(d.next_frame(), Err(CodecError::BadLength(_))));
    }

    #[test]
    fn buffer_compaction_does_not_lose_frames() {
        let mut d = FrameDecoder::new();
        // Enough frames to force the drain path several times over.
        for round in 0..200u64 {
            d.push(&encode_frame(round, &sample_msg(round)));
            match d.next_frame().unwrap() {
                Some(FrameEvent::Msg { seq, .. }) => assert_eq!(seq, round),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(!d.has_partial());
    }

    #[test]
    fn reassembly_buffer_shrinks_after_large_frame() {
        let mut d = FrameDecoder::new();
        // One huge write frame balloons the buffer well past the cap...
        let big = Message::GmWriteReq {
            req: ReqId(1),
            region: RegionId(0),
            offset: 0,
            data: vec![0xAB; 4 * DECODER_HIGH_WATER].into(),
        };
        d.push(&encode_frame(0, &big));
        assert!(matches!(
            d.next_frame().unwrap(),
            Some(FrameEvent::Msg { seq: 0, .. })
        ));
        assert!(d.buffer_capacity() > DECODER_HIGH_WATER);
        // ...then small steady-state traffic releases the excess capacity
        // instead of pinning largest-frame-ever forever.
        for i in 1..4u64 {
            d.push(&encode_frame(i, &sample_msg(i)));
            assert!(matches!(
                d.next_frame().unwrap(),
                Some(FrameEvent::Msg { .. })
            ));
        }
        assert!(
            d.buffer_capacity() <= DECODER_HIGH_WATER,
            "capacity {} still above high water",
            d.buffer_capacity()
        );
    }

    #[test]
    fn payload_views_share_reassembly_buffer() {
        // The decoded GmReadResp data must be a view into the decoder's
        // buffer (refcount > 1 while held), not a copy.
        let msg = Message::GmReadResp {
            req: ReqId(9),
            data: vec![0x5A; 256].into(),
        };
        let mut d = FrameDecoder::new();
        d.push(&encode_frame(0, &msg));
        let held = match d.next_frame().unwrap() {
            Some(FrameEvent::Msg { msg, .. }) => msg,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(Arc::strong_count(&d.buf), 2);
        // While the view is alive a push must not disturb its bytes.
        d.push(&encode_frame(1, &sample_msg(1)));
        match &held {
            Message::GmReadResp { data, .. } => assert_eq!(*data, vec![0x5A; 256]),
            other => panic!("unexpected {other:?}"),
        }
        drop(held);
        // View gone: the buffer is unique again for in-place appends.
        let _ = d.next_frame().unwrap();
        d.push(&[0u8]);
        assert_eq!(Arc::strong_count(&d.buf), 1);
    }

    // --- Trace-context extension (back-compat + degradation). -------------

    /// Byte image of the pre-extension format: `encode_frame` must still
    /// produce exactly `[len][kind=0][seq][payload]`, so frames written by
    /// an un-upgraded peer decode unchanged.
    #[test]
    fn pre_extension_frames_still_decode() {
        let msg = sample_msg(5);
        let payload = msg.encode();
        let mut legacy = Vec::new();
        legacy.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        legacy.push(FRAME_MSG);
        legacy.extend_from_slice(&11u64.to_le_bytes());
        legacy.extend_from_slice(&payload);
        assert_eq!(legacy, encode_frame(11, &msg));
        let mut d = FrameDecoder::new();
        d.push(&legacy);
        assert_eq!(
            d.next_frame().unwrap(),
            Some(FrameEvent::Msg {
                seq: 11,
                msg,
                ctx: None
            })
        );
        assert_eq!(d.dropped_trace_ctx(), 0);
    }

    #[test]
    fn encode_frame_ctx_without_ctx_is_plain_framing() {
        let msg = sample_msg(2);
        assert_eq!(encode_frame_ctx(7, &msg, None), encode_frame(7, &msg));
    }

    #[test]
    fn traced_frame_roundtrips() {
        let msg = sample_msg(3);
        let ctx = TraceCtx {
            trace: 0xDEAD_BEEF_0001,
            parent: 0xFACE_0002,
        };
        let buf = encode_frame_ctx(9, &msg, Some(ctx));
        let mut d = FrameDecoder::new();
        d.push(&buf);
        assert_eq!(
            d.next_frame().unwrap(),
            Some(FrameEvent::Msg {
                seq: 9,
                msg,
                ctx: Some(ctx)
            })
        );
        assert_eq!(d.dropped_trace_ctx(), 0);
    }

    #[test]
    fn corrupt_trace_ext_version_drops_ctx_not_message() {
        let msg = sample_msg(4);
        let ctx = TraceCtx {
            trace: 1,
            parent: 2,
        };
        let mut raw = encode_frame_ctx(0, &msg, Some(ctx));
        raw[FRAME_HEADER_LEN + 1] = 0x7F; // flip the ext version byte
        let mut d = FrameDecoder::new();
        d.push(&raw);
        assert_eq!(
            d.next_frame().unwrap(),
            Some(FrameEvent::Msg {
                seq: 0,
                msg,
                ctx: None
            })
        );
        assert_eq!(d.dropped_trace_ctx(), 1);
    }

    /// A future, longer extension we don't understand: skipped by length,
    /// counted, message intact.
    #[test]
    fn unknown_longer_ext_is_skipped_by_length() {
        let msg = sample_msg(6);
        let payload = msg.encode();
        let ext = [0u8; 24]; // version 0, 24 bytes — not ours
        let mut w = Writer::new();
        w.u32((1 + ext.len() + payload.len()) as u32);
        w.u8(FRAME_MSG_TRACED);
        w.u64(4);
        w.u8(ext.len() as u8);
        let mut raw = w.finish();
        raw.extend_from_slice(&ext);
        raw.extend_from_slice(&payload);
        let mut d = FrameDecoder::new();
        d.push(&raw);
        assert_eq!(
            d.next_frame().unwrap(),
            Some(FrameEvent::Msg {
                seq: 4,
                msg,
                ctx: None
            })
        );
        assert_eq!(d.dropped_trace_ctx(), 1);
    }

    /// An ext_len pointing past the payload leaves no recoverable message
    /// boundary — that is fatal framing corruption, like a bad kind byte.
    #[test]
    fn trace_ext_len_past_payload_is_fatal() {
        let msg = sample_msg(8);
        let mut raw = encode_frame_ctx(
            0,
            &msg,
            Some(TraceCtx {
                trace: 3,
                parent: 4,
            }),
        );
        raw[FRAME_HEADER_LEN] = 0xFF; // ext_len far beyond the payload
        let mut d = FrameDecoder::new();
        d.push(&raw);
        assert!(matches!(d.next_frame(), Err(CodecError::BadLength(_))));
    }
}
