//! Allocation regression gate for the zero-copy hot path.
//!
//! A steady-state GM read round-trip on the channel backend must allocate
//! *nothing*: frame encode buffers come from the cluster [`FramePool`],
//! the decoder reassembles in place once its buffer is warm, and payloads
//! are handed up as views into the reassembly buffer. This test installs a
//! counting global allocator (its own binary, so no other test interferes),
//! warms the pools, then asserts zero allocations across many round-trips.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use dse_msg::{Message, RegionId, ReqId};
use dse_transport::{ChannelTransport, Transport};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// One synchronous GM read round-trip: PE 0 asks, PE 1 answers from a
/// pre-built shared payload, PE 0 checks the data. Everything is driven
/// from the test thread, so delivery is deterministic and nothing waits.
fn round_trip(a: &ChannelTransport, b: &ChannelTransport, data: &dse_msg::Bytes, i: u64) {
    a.send(
        1,
        &Message::GmReadReq {
            req: ReqId(i),
            region: RegionId(0),
            offset: 0,
            len: data.len() as u32,
        },
    )
    .unwrap();
    let req = b
        .recv(Some(Duration::from_secs(5)))
        .unwrap()
        .expect("request arrives");
    let req_id = match req.msg {
        Message::GmReadReq { req, .. } => req,
        other => panic!("unexpected request: {other:?}"),
    };
    b.send(
        0,
        &Message::GmReadResp {
            req: req_id,
            data: data.clone(),
        },
    )
    .unwrap();
    let resp = b2a_resp(a);
    assert_eq!(resp, *data.as_slice());
}

fn b2a_resp(a: &ChannelTransport) -> Vec<u8> {
    // The comparison Vec is built *outside* the counting window by the
    // caller pattern below; here we only pop and view. To keep the counted
    // region clean this helper is only used during warmup.
    let env = a
        .recv(Some(Duration::from_secs(5)))
        .unwrap()
        .expect("response arrives");
    match env.msg {
        Message::GmReadResp { data, .. } => data.as_slice().to_vec(),
        other => panic!("unexpected response: {other:?}"),
    }
}

/// Allocation-free variant for the counted region: verifies the payload by
/// comparison against the shared source, no copies made.
fn round_trip_counted(a: &ChannelTransport, b: &ChannelTransport, data: &dse_msg::Bytes, i: u64) {
    a.send(
        1,
        &Message::GmReadReq {
            req: ReqId(i),
            region: RegionId(0),
            offset: 0,
            len: data.len() as u32,
        },
    )
    .unwrap();
    let req = b
        .recv(Some(Duration::from_secs(5)))
        .unwrap()
        .expect("request arrives");
    let req_id = match req.msg {
        Message::GmReadReq { req, .. } => req,
        other => panic!("unexpected request: {other:?}"),
    };
    b.send(
        0,
        &Message::GmReadResp {
            req: req_id,
            data: data.clone(),
        },
    )
    .unwrap();
    let env = a
        .recv(Some(Duration::from_secs(5)))
        .unwrap()
        .expect("response arrives");
    match &env.msg {
        Message::GmReadResp { data: got, .. } => assert_eq!(got, data),
        other => panic!("unexpected response: {other:?}"),
    }
}

#[test]
fn steady_state_gm_round_trip_allocates_nothing() {
    let mut cluster = ChannelTransport::cluster(2);
    let b = cluster.pop().unwrap();
    let a = cluster.pop().unwrap();
    drop(cluster);

    // The payload a GM read serves; shared so responses are refcount bumps.
    let data: dse_msg::Bytes = (0..512u32).map(|i| i as u8).collect::<Vec<u8>>().into();

    // Warmup: grow the frame pool, the decoders' reassembly buffers, and
    // the ready/inbox queues to their steady-state footprint.
    for i in 0..64 {
        round_trip(&a, &b, &data, i);
    }

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for i in 0..256 {
        round_trip_counted(&a, &b, &data, 64 + i);
    }
    COUNTING.store(false, Ordering::SeqCst);

    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n, 0,
        "steady-state GM round-trips allocated {n} times (expected 0): \
         a pooled buffer, decoder buffer, or payload path regressed to copying"
    );
}
