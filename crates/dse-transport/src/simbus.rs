//! Shared-bus backend: the simulator's Ethernet model recast as a live
//! transport. The paper's cluster hangs every node off one 10 Mbit/s
//! shared-bus Ethernet, so the defining behaviors are (a) one frame on the
//! medium at a time and (b) an own-node path that never touches the bus.
//! Here a single mutex *is* the medium — every inter-node frame serializes
//! through it and charges its transmission time to the bus account — while
//! self-sends bypass it exactly like the sim's loopback path.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use dse_msg::{Message, TraceCtx};

use crate::mux::{BlockingQueue, FrameMux, FramePool};
use crate::{Envelope, Transport, TransportError};

/// Timing model for the shared bus.
#[derive(Debug, Clone)]
pub struct BusParams {
    /// Fixed per-frame medium-acquisition latency in nanoseconds.
    pub latency_ns: u64,
    /// Transmission time per payload byte in nanoseconds (800 ns/byte is
    /// the paper's 10 Mbit/s Ethernet).
    pub ns_per_byte: u64,
    /// If true, actually sleep for the modeled transmission time while
    /// holding the medium (slows real runs; useful to surface contention).
    pub realtime: bool,
}

impl Default for BusParams {
    fn default() -> Self {
        BusParams {
            latency_ns: 100_000,
            ns_per_byte: 800,
            realtime: false,
        }
    }
}

/// Cumulative bus accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Frames that crossed the shared medium (loopback excluded).
    pub frames: u64,
    /// Bytes that crossed the shared medium.
    pub bytes: u64,
    /// Modeled busy time of the medium in nanoseconds.
    pub busy_ns: u64,
}

type Inbox = Arc<BlockingQueue<(u32, Vec<u8>)>>;

struct BusCore {
    params: BusParams,
    // The shared medium: holding this lock is "transmitting".
    medium: Mutex<BusStats>,
    inboxes: Vec<Inbox>,
}

/// Shared-bus transport endpoint; build a cluster with
/// [`SimBusTransport::cluster`].
pub struct SimBusTransport {
    mux: FrameMux,
    core: Arc<BusCore>,
}

impl SimBusTransport {
    /// Create `npes` endpoints on one shared bus.
    pub fn cluster(npes: u32, params: BusParams) -> Vec<SimBusTransport> {
        let core = Arc::new(BusCore {
            params,
            medium: Mutex::new(BusStats::default()),
            inboxes: (0..npes)
                .map(|_| Arc::new(BlockingQueue::default()))
                .collect(),
        });
        let pool = Arc::new(FramePool::default());
        (0..npes)
            .map(|pe| SimBusTransport {
                mux: FrameMux::with_pool(pe, npes, Arc::clone(&pool)),
                core: Arc::clone(&core),
            })
            .collect()
    }

    /// Snapshot of the shared-medium accounting.
    pub fn bus_stats(&self) -> BusStats {
        *self.core.medium.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn inbox(&self) -> &Inbox {
        &self.core.inboxes[self.mux.pe() as usize]
    }

    fn send_impl(
        &self,
        to: u32,
        msg: &Message,
        ctx: Option<TraceCtx>,
    ) -> Result<(), TransportError> {
        if to == self.mux.pe() {
            // Own-node fast path: no bus traversal, like the sim loopback.
            return self.mux.send_frame(to, msg, ctx, |frame| {
                self.inbox().push((self.mux.pe(), frame))
            });
        }
        self.mux.send_frame(to, msg, ctx, |frame| {
            // Acquire the medium; deliver while holding it so bus order is
            // a total order, as on a real shared segment.
            let mut stats = self.core.medium.lock().unwrap_or_else(|e| e.into_inner());
            let tx_ns =
                self.core.params.latency_ns + frame.len() as u64 * self.core.params.ns_per_byte;
            stats.frames += 1;
            stats.bytes += frame.len() as u64;
            stats.busy_ns += tx_ns;
            if !self.core.inboxes[to as usize].push((self.mux.pe(), frame)) {
                return false;
            }
            if self.core.params.realtime {
                std::thread::sleep(Duration::from_nanos(tx_ns));
            }
            true
        })
    }
}

impl Transport for SimBusTransport {
    fn pe(&self) -> u32 {
        self.mux.pe()
    }

    fn npes(&self) -> u32 {
        self.mux.npes()
    }

    fn send(&self, to: u32, msg: &Message) -> Result<(), TransportError> {
        self.send_impl(to, msg, None)
    }

    fn send_ctx(&self, to: u32, msg: &Message, ctx: TraceCtx) -> Result<(), TransportError> {
        self.send_impl(to, msg, Some(ctx))
    }

    fn recv(&self, timeout: Option<Duration>) -> Result<Option<Envelope>, TransportError> {
        self.mux.recv_via(self.inbox(), timeout)
    }

    fn poll_recv(&self) -> Result<Option<Envelope>, TransportError> {
        // Same caveat as the channel backend: a zero-timeout recv_via never
        // ingests queued frames, so poll explicitly.
        self.mux.poll_via(self.inbox())
    }

    fn shutdown(&self) {
        for to in 0..self.mux.npes() {
            if to != self.mux.pe() {
                self.mux.send_bye(to, |bye| {
                    self.core.inboxes[to as usize].push((self.mux.pe(), bye))
                });
            }
        }
        self.inbox().close();
    }

    fn kind(&self) -> &'static str {
        "bus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_msg::{RegionId, ReqId};

    fn msg(i: u64) -> Message {
        Message::GmWriteReq {
            req: ReqId(i),
            region: RegionId(0),
            offset: 0,
            data: vec![0u8; 32].into(),
        }
    }

    #[test]
    fn bus_charges_remote_frames_only() {
        let cluster = SimBusTransport::cluster(2, BusParams::default());
        cluster[0].send(0, &msg(0)).unwrap(); // loopback: free
        cluster[0].send(1, &msg(1)).unwrap(); // crosses the bus
        let stats = cluster[0].bus_stats();
        assert_eq!(stats.frames, 1);
        assert!(stats.bytes > 0);
        assert!(stats.busy_ns >= BusParams::default().latency_ns);
        let env = cluster[1]
            .recv(Some(Duration::from_secs(1)))
            .unwrap()
            .unwrap();
        assert_eq!(env.msg, msg(1));
    }

    #[test]
    fn stats_shared_across_endpoints() {
        let cluster = SimBusTransport::cluster(3, BusParams::default());
        cluster[0].send(1, &msg(0)).unwrap();
        cluster[2].send(1, &msg(1)).unwrap();
        assert_eq!(cluster[1].bus_stats().frames, 2);
    }
}
