//! Shared plumbing for the in-process backends: a blocking frame queue per
//! PE and a demultiplexer that reassembles/sequence-checks frames from each
//! sender. Both [`crate::ChannelTransport`] and [`crate::SimBusTransport`]
//! deliver *encoded frame bytes* into these queues, so the wire codec is
//! exercised even when no socket is involved.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use std::sync::Arc;

use dse_msg::{
    encode_bye_into, encode_frame_ctx_into, FrameDecoder, FrameEvent, Message, TraceCtx,
};

use crate::{Envelope, TransportError};

/// Cap on buffers retained by a [`FramePool`]; beyond this, returned
/// buffers are simply dropped.
const POOL_MAX_BUFS: usize = 64;

/// Capacity above which a returned buffer is dropped instead of pooled, so
/// one giant frame doesn't pin its footprint forever (mirrors the decoder's
/// high-water policy).
const POOL_MAX_CAP: usize = 64 * 1024;

/// A free-list of frame encode buffers shared by a cluster's endpoints.
///
/// Senders [`get`](FramePool::get) a cleared buffer, encode a frame into
/// it, and hand it to the destination's inbox; the receiver returns it with
/// [`put`](FramePool::put) once ingested. In steady state every frame hop
/// reuses a warm buffer and the send path allocates nothing.
#[derive(Default)]
pub struct FramePool {
    bufs: Mutex<Vec<Vec<u8>>>,
}

impl FramePool {
    /// Take a cleared buffer from the pool (or a fresh one when empty).
    pub fn get(&self) -> Vec<u8> {
        self.bufs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default()
    }

    /// Return a spent buffer for reuse. Oversized or surplus buffers are
    /// dropped rather than retained.
    pub fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > POOL_MAX_CAP {
            return;
        }
        buf.clear();
        let mut g = self.bufs.lock().unwrap_or_else(|e| e.into_inner());
        if g.len() < POOL_MAX_BUFS {
            g.push(buf);
        }
    }

    /// Buffers currently pooled (observability for tests).
    #[cfg(test)]
    pub fn pooled(&self) -> usize {
        self.bufs.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// Outcome of a timed pop.
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed.
    TimedOut,
    /// The queue is closed and drained.
    Closed,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// An unbounded MPSC queue with timed blocking pop. Items already queued
/// remain poppable after `close` (drain-then-closed semantics), so a clean
/// shutdown never discards delivered frames.
pub struct BlockingQueue<T> {
    inner: Mutex<QueueInner<T>>,
    cv: Condvar,
}

impl<T> Default for BlockingQueue<T> {
    fn default() -> Self {
        BlockingQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }
}

impl<T> BlockingQueue<T> {
    /// Enqueue an item. Returns `false` (dropping the item) if closed.
    pub fn push(&self, item: T) -> bool {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if g.closed {
            return false;
        }
        g.items.push_back(item);
        self.cv.notify_one();
        true
    }

    /// Dequeue with an optional timeout (`None` blocks indefinitely).
    pub fn pop(&self, timeout: Option<Duration>) -> Pop<T> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = g.items.pop_front() {
                return Pop::Item(item);
            }
            if g.closed {
                return Pop::Closed;
            }
            match deadline {
                None => {
                    g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Pop::TimedOut;
                    }
                    let (ng, _) = self
                        .cv
                        .wait_timeout(g, d - now)
                        .unwrap_or_else(|e| e.into_inner());
                    g = ng;
                }
            }
        }
    }

    /// Close the queue, waking all waiters.
    pub fn close(&self) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.closed = true;
        self.cv.notify_all();
    }
}

struct PeerRx {
    dec: FrameDecoder,
    next_seq: u64,
    bye: bool,
}

/// Receive-side demux: per-sender frame reassembly and sequence checking
/// over a single inbox of `(from, frame-bytes)` deliveries, plus the
/// per-destination send sequence counters.
pub struct FrameMux {
    pe: u32,
    npes: u32,
    tx_seq: Mutex<Vec<u64>>,
    rx: Mutex<Vec<PeerRx>>,
    ready: Mutex<VecDeque<Envelope>>,
    pool: Arc<FramePool>,
}

impl FrameMux {
    /// A mux whose encode buffers come from (and return to) `pool`. Cluster
    /// constructors share one pool so a buffer sent by PE a and ingested by
    /// PE b goes back into circulation for any sender.
    pub fn with_pool(pe: u32, npes: u32, pool: Arc<FramePool>) -> Self {
        FrameMux {
            pe,
            npes,
            tx_seq: Mutex::new(vec![0; npes as usize]),
            rx: Mutex::new(
                (0..npes)
                    .map(|_| PeerRx {
                        dec: FrameDecoder::new(),
                        next_seq: 0,
                        bye: false,
                    })
                    .collect(),
            ),
            ready: Mutex::new(VecDeque::new()),
            pool,
        }
    }

    pub fn pe(&self) -> u32 {
        self.pe
    }

    pub fn npes(&self) -> u32 {
        self.npes
    }

    /// The frame-buffer pool this mux draws from.
    #[cfg(test)]
    pub fn pool(&self) -> &FramePool {
        &self.pool
    }

    /// Encode `msg` as the next frame for destination `to` and hand it to
    /// `deliver` (returning `false` means the destination dropped it). The
    /// sequence allocator stays locked across delivery: an endpoint may be
    /// shared by several sending threads, and allocating the number in one
    /// step but delivering in another would let two frames reach the same
    /// destination out of sequence order.
    pub fn send_frame(
        &self,
        to: u32,
        msg: &Message,
        ctx: Option<TraceCtx>,
        deliver: impl FnOnce(Vec<u8>) -> bool,
    ) -> Result<(), TransportError> {
        if to >= self.npes {
            return Err(TransportError::NoSuchPeer { peer: to });
        }
        let mut seqs = self.tx_seq.lock().unwrap_or_else(|e| e.into_inner());
        let seq = seqs[to as usize];
        let mut frame = self.pool.get();
        encode_frame_ctx_into(&mut frame, seq, msg, ctx);
        if !deliver(frame) {
            return Err(TransportError::PeerDropped { peer: to });
        }
        seqs[to as usize] += 1;
        Ok(())
    }

    /// Encode a run of messages as consecutive frames for `to` into a
    /// single pooled buffer and hand it to `deliver` in one delivery. The
    /// receive side's frame decoder is a streaming reassembler, so one
    /// multi-frame buffer is indistinguishable from back-to-back single
    /// frames — but the queue (or socket) is touched once instead of once
    /// per message.
    pub fn send_frames(
        &self,
        to: u32,
        msgs: &[(Message, Option<TraceCtx>)],
        deliver: impl FnOnce(Vec<u8>) -> bool,
    ) -> Result<(), TransportError> {
        if to >= self.npes {
            return Err(TransportError::NoSuchPeer { peer: to });
        }
        if msgs.is_empty() {
            return Ok(());
        }
        let mut seqs = self.tx_seq.lock().unwrap_or_else(|e| e.into_inner());
        let mut seq = seqs[to as usize];
        let mut frame = self.pool.get();
        for (msg, ctx) in msgs {
            encode_frame_ctx_into(&mut frame, seq, msg, *ctx);
            seq += 1;
        }
        if !deliver(frame) {
            return Err(TransportError::PeerDropped { peer: to });
        }
        seqs[to as usize] = seq;
        Ok(())
    }

    /// Encode the `Bye` frame for destination `to` and hand it to `deliver`
    /// (same locking discipline as [`FrameMux::send_frame`]).
    pub fn send_bye(&self, to: u32, deliver: impl FnOnce(Vec<u8>) -> bool) {
        let mut seqs = self.tx_seq.lock().unwrap_or_else(|e| e.into_inner());
        let seq = seqs[to as usize];
        let mut frame = self.pool.get();
        encode_bye_into(&mut frame, seq);
        if deliver(frame) {
            seqs[to as usize] += 1;
        }
    }

    /// Feed raw frame bytes received from `from`; decoded messages land in
    /// the ready queue.
    pub fn ingest(&self, from: u32, bytes: &[u8]) -> Result<(), TransportError> {
        let mut rx = self.rx.lock().unwrap_or_else(|e| e.into_inner());
        let pr = &mut rx[from as usize];
        pr.dec.push(bytes);
        loop {
            match pr.dec.next_frame()? {
                None => break,
                Some(FrameEvent::Bye { seq }) => {
                    Self::check_seq(from, &mut pr.next_seq, seq)?;
                    pr.bye = true;
                }
                Some(FrameEvent::Msg { seq, msg, ctx }) => {
                    Self::check_seq(from, &mut pr.next_seq, seq)?;
                    self.ready
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push_back(Envelope {
                            from,
                            seq,
                            msg,
                            ctx,
                        });
                }
            }
        }
        Ok(())
    }

    fn check_seq(from: u32, next: &mut u64, got: u64) -> Result<(), TransportError> {
        if got != *next {
            return Err(TransportError::SequenceGap {
                peer: from,
                expected: *next,
                got,
            });
        }
        *next += 1;
        Ok(())
    }

    /// Pop one decoded envelope, if any.
    pub fn take_ready(&self) -> Option<Envelope> {
        self.ready
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }

    /// Drive the inbox until an envelope is ready or the timeout elapses.
    pub fn recv_via(
        &self,
        inbox: &BlockingQueue<(u32, Vec<u8>)>,
        timeout: Option<Duration>,
    ) -> Result<Option<Envelope>, TransportError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            if let Some(env) = self.take_ready() {
                return Ok(Some(env));
            }
            let remaining = match deadline {
                None => None,
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Ok(None);
                    }
                    Some(d - now)
                }
            };
            match inbox.pop(remaining) {
                Pop::Item((from, bytes)) => {
                    self.ingest(from, &bytes)?;
                    self.pool.put(bytes);
                }
                Pop::TimedOut => return Ok(None),
                Pop::Closed => {
                    // Drain anything decoded between the check above and
                    // the close, then report closure.
                    return match self.take_ready() {
                        Some(env) => Ok(Some(env)),
                        None => Err(TransportError::Closed),
                    };
                }
            }
        }
    }

    /// Non-blocking receive: drain whatever the inbox already holds into
    /// the decoder and pop one envelope if any is ready. Never waits.
    /// (`recv_via` with a zero timeout is *not* equivalent — its deadline
    /// check fires before the inbox pop, so queued-but-undecoded frames
    /// would never be ingested.)
    pub fn poll_via(
        &self,
        inbox: &BlockingQueue<(u32, Vec<u8>)>,
    ) -> Result<Option<Envelope>, TransportError> {
        loop {
            if let Some(env) = self.take_ready() {
                return Ok(Some(env));
            }
            match inbox.pop(Some(Duration::ZERO)) {
                Pop::Item((from, bytes)) => {
                    self.ingest(from, &bytes)?;
                    self.pool.put(bytes);
                }
                Pop::TimedOut => return Ok(None),
                Pop::Closed => {
                    return match self.take_ready() {
                        Some(env) => Ok(Some(env)),
                        None => Err(TransportError::Closed),
                    };
                }
            }
        }
    }
}
