//! Framed socket backend: real byte streams between PEs, over TCP or Unix
//! domain sockets.
//!
//! Mesh construction: every PE binds a listener; PE `p` dials every peer
//! `q < p` (with retry under bounded exponential backoff, since peers come
//! up in arbitrary order) and accepts connections from every `q > p`. The
//! dialer identifies itself with a 4-byte little-endian hello carrying its
//! rank. The receive path is readiness-driven: one poller thread per
//! *endpoint* (not per connection) sweeps every peer connection in
//! nonblocking mode, reassembles frames with `FrameDecoder`, and feeds a
//! single event queue — so an endpoint costs O(1) threads however many
//! peers it has. Nonblocking is a property of the shared fd, so the write
//! half absorbs `WouldBlock` itself (see `write_all_nb`).
//!
//! Shutdown is a handshake: `shutdown` sends a `Bye` frame on every
//! connection and closes the write half. A reader that sees `Bye` (or EOF
//! after we initiated shutdown) ends quietly; an EOF *without* `Bye` is
//! reported to the consumer as [`TransportError::PeerDropped`], and a cut
//! mid-frame is just as visible — the partial frame never decodes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use dse_msg::{encode_bye, encode_frame_ctx_into, FrameDecoder, FrameEvent, Message, TraceCtx};

use crate::mux::{BlockingQueue, Pop};
use crate::{Envelope, Transport, TransportError};

/// Bounded exponential backoff for mesh dialing.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum connection attempts before giving up.
    pub max_attempts: u32,
    /// Delay after the first failed attempt.
    pub base_delay: Duration,
    /// Ceiling on the per-attempt delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 20,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
        }
    }
}

/// A duplex stream, TCP or Unix.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Uds(s) => s.try_clone().map(Conn::Uds),
        }
    }

    fn shutdown_both(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Conn::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Half-close: FIN the write side but keep reading, so a polite
    /// shutdown still drains whatever the peer has in flight (its reader
    /// thread exits on the peer's own `Bye`). A full close here could turn
    /// a late-arriving frame into a connection reset that destroys our
    /// already-queued `Bye` before the peer reads it.
    fn shutdown_write(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Write);
            }
            #[cfg(unix)]
            Conn::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Write);
            }
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(nb),
            #[cfg(unix)]
            Conn::Uds(s) => s.set_nonblocking(nb),
        }
    }
}

/// `write_all` over a nonblocking stream. The poller needs the fd
/// nonblocking for its readiness sweep, and nonblocking is a property of
/// the fd shared by both clones — so the write half must absorb
/// `WouldBlock` (kernel send buffer full, e.g. mid-way through a 1 MiB
/// frame) by retrying after a short sleep instead of failing the send.
fn write_all_nb(conn: &mut Conn, mut buf: &[u8]) -> std::io::Result<()> {
    use std::io::ErrorKind;
    while !buf.is_empty() {
        match conn.write(buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::WriteZero,
                    "connection wrote zero bytes",
                ))
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_micros(100));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Uds(s) => s.flush(),
        }
    }
}

struct PeerTx {
    conn: Conn,
    next_seq: u64,
    // Per-peer encode buffer, reused across sends: steady-state sends
    // encode into warm capacity and allocate nothing. Batched sends stack
    // several frames here before the single write.
    scratch: Vec<u8>,
}

/// Socket-backed transport endpoint. Build whole in-process clusters with
/// [`SocketTransport::tcp_cluster`] / [`SocketTransport::uds_cluster`].
pub struct SocketTransport {
    pe: u32,
    npes: u32,
    kind: &'static str,
    // Writer side per peer; None at our own index.
    peers: Vec<Mutex<Option<PeerTx>>>,
    // Loopback: self-sends decode locally, same discipline as the wire.
    // The Vec is the reused loopback encode buffer.
    self_rx: Mutex<(FrameDecoder, u64, Vec<u8>)>,
    events: Arc<BlockingQueue<Result<Envelope, TransportError>>>,
    closing: Arc<AtomicBool>,
}

fn dial_tcp(addr: SocketAddr, peer: u32, retry: &RetryPolicy) -> Result<TcpStream, TransportError> {
    let mut delay = retry.base_delay;
    let mut last = String::new();
    for attempt in 0..retry.max_attempts {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = e.to_string(),
        }
        if attempt + 1 < retry.max_attempts {
            thread::sleep(delay);
            delay = (delay * 2).min(retry.max_delay);
        }
    }
    Err(TransportError::ConnectFailed {
        peer,
        attempts: retry.max_attempts,
        last,
    })
}

#[cfg(unix)]
fn dial_uds(path: &Path, peer: u32, retry: &RetryPolicy) -> Result<UnixStream, TransportError> {
    let mut delay = retry.base_delay;
    let mut last = String::new();
    for attempt in 0..retry.max_attempts {
        match UnixStream::connect(path) {
            Ok(s) => return Ok(s),
            Err(e) => last = e.to_string(),
        }
        if attempt + 1 < retry.max_attempts {
            thread::sleep(delay);
            delay = (delay * 2).min(retry.max_delay);
        }
    }
    Err(TransportError::ConnectFailed {
        peer,
        attempts: retry.max_attempts,
        last,
    })
}

fn read_hello(conn: &mut Conn) -> Result<u32, TransportError> {
    let mut b = [0u8; 4];
    conn.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn write_hello(conn: &mut Conn, pe: u32) -> Result<(), TransportError> {
    conn.write_all(&pe.to_le_bytes())?;
    Ok(())
}

impl SocketTransport {
    /// Build an `npes`-endpoint TCP mesh over loopback, using ephemeral
    /// ports. Endpoint `i` belongs to PE `i`.
    pub fn tcp_cluster(npes: u32) -> Result<Vec<SocketTransport>, TransportError> {
        let listeners: Vec<TcpListener> = (0..npes)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<Result<_, _>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(TcpListener::local_addr)
            .collect::<Result<_, _>>()?;
        let retry = RetryPolicy::default();
        Self::build_mesh(npes, "tcp", listeners, move |pe, listener| {
            Self::tcp_mesh_one(pe, listener, &addrs, &retry)
        })
    }

    /// Build an `npes`-endpoint Unix-domain-socket mesh with socket files
    /// under `dir`.
    #[cfg(unix)]
    pub fn uds_cluster(npes: u32, dir: &Path) -> Result<Vec<SocketTransport>, TransportError> {
        let paths: Vec<PathBuf> = (0..npes)
            .map(|i| dir.join(format!("pe-{i}.sock")))
            .collect();
        let listeners: Vec<UnixListener> = paths
            .iter()
            .map(|p| {
                let _ = std::fs::remove_file(p);
                UnixListener::bind(p)
            })
            .collect::<Result<_, _>>()?;
        let retry = RetryPolicy::default();
        Self::build_mesh(npes, "uds", listeners, move |pe, listener| {
            Self::uds_mesh_one(pe, listener, &paths, &retry)
        })
    }

    fn build_mesh<L: Send + 'static>(
        npes: u32,
        kind: &'static str,
        listeners: Vec<L>,
        connect: impl Fn(u32, L) -> Result<Vec<(u32, Conn)>, TransportError> + Sync,
    ) -> Result<Vec<SocketTransport>, TransportError> {
        let results: Vec<Result<Vec<(u32, Conn)>, TransportError>> = thread::scope(|s| {
            let connect = &connect;
            let handles: Vec<_> = listeners
                .into_iter()
                .enumerate()
                .map(|(pe, listener)| s.spawn(move || connect(pe as u32, listener)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(TransportError::Io("mesh connect thread panicked".into()))
                    })
                })
                .collect()
        });
        results
            .into_iter()
            .enumerate()
            .map(|(pe, conns)| Self::from_conns(pe as u32, npes, kind, conns?))
            .collect()
    }

    fn tcp_mesh_one(
        pe: u32,
        listener: TcpListener,
        addrs: &[SocketAddr],
        retry: &RetryPolicy,
    ) -> Result<Vec<(u32, Conn)>, TransportError> {
        let npes = addrs.len() as u32;
        let mut conns = Vec::new();
        // Dial lower ranks, identifying ourselves.
        for q in 0..pe {
            let mut conn = Conn::Tcp(dial_tcp(addrs[q as usize], q, retry)?);
            write_hello(&mut conn, pe)?;
            conns.push((q, conn));
        }
        // Accept higher ranks; they say hello.
        for _ in pe + 1..npes {
            let (stream, _) = listener.accept()?;
            let mut conn = Conn::Tcp(stream);
            let q = read_hello(&mut conn)?;
            conns.push((q, conn));
        }
        Ok(conns)
    }

    #[cfg(unix)]
    fn uds_mesh_one(
        pe: u32,
        listener: UnixListener,
        paths: &[PathBuf],
        retry: &RetryPolicy,
    ) -> Result<Vec<(u32, Conn)>, TransportError> {
        let npes = paths.len() as u32;
        let mut conns = Vec::new();
        for q in 0..pe {
            let mut conn = Conn::Uds(dial_uds(&paths[q as usize], q, retry)?);
            write_hello(&mut conn, pe)?;
            conns.push((q, conn));
        }
        for _ in pe + 1..npes {
            let (stream, _) = listener.accept()?;
            let mut conn = Conn::Uds(stream);
            let q = read_hello(&mut conn)?;
            conns.push((q, conn));
        }
        Ok(conns)
    }

    fn from_conns(
        pe: u32,
        npes: u32,
        kind: &'static str,
        conns: Vec<(u32, Conn)>,
    ) -> Result<SocketTransport, TransportError> {
        let events: Arc<BlockingQueue<Result<Envelope, TransportError>>> =
            Arc::new(BlockingQueue::default());
        let closing = Arc::new(AtomicBool::new(false));
        let mut peers: Vec<Mutex<Option<PeerTx>>> = (0..npes).map(|_| Mutex::new(None)).collect();
        let mut pollers: Vec<PollerConn> = Vec::new();
        for (q, conn) in conns {
            let reader = conn.try_clone()?;
            // The mesh/hello exchange above ran blocking; from here on the
            // fd is nonblocking for the poller sweep (writes compensate via
            // `write_all_nb`).
            reader.set_nonblocking(true)?;
            *peers[q as usize]
                .get_mut()
                .unwrap_or_else(|e| e.into_inner()) = Some(PeerTx {
                conn,
                next_seq: 0,
                scratch: Vec::new(),
            });
            pollers.push(PollerConn {
                from: q,
                conn: reader,
                dec: FrameDecoder::new(),
                next_seq: 0,
                done: false,
                clean: false,
            });
        }
        if !pollers.is_empty() {
            let events = Arc::clone(&events);
            let closing = Arc::clone(&closing);
            thread::Builder::new()
                .name(format!("dse-poll-{pe}"))
                .spawn(move || poller_loop(pollers, events, closing))
                .map_err(|e| TransportError::Io(format!("spawn poller thread: {e}")))?;
        }
        Ok(SocketTransport {
            pe,
            npes,
            kind,
            peers,
            self_rx: Mutex::new((FrameDecoder::new(), 0, Vec::new())),
            events,
            closing,
        })
    }

    fn send_impl(
        &self,
        to: u32,
        msg: &Message,
        ctx: Option<TraceCtx>,
    ) -> Result<(), TransportError> {
        if to >= self.npes {
            return Err(TransportError::NoSuchPeer { peer: to });
        }
        if to == self.pe {
            // Own-node fast path still runs the frame codec end to end.
            let mut g = self.self_rx.lock().unwrap_or_else(|e| e.into_inner());
            let (dec, seq, scratch) = &mut *g;
            scratch.clear();
            encode_frame_ctx_into(scratch, *seq, msg, ctx);
            dec.push(scratch);
            *seq += 1;
            while let Some(ev) = dec.next_frame()? {
                if let FrameEvent::Msg { seq, msg, ctx } = ev {
                    self.events.push(Ok(Envelope {
                        from: self.pe,
                        seq,
                        msg,
                        ctx,
                    }));
                }
            }
            return Ok(());
        }
        let mut g = self.peers[to as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let peer = g.as_mut().ok_or(TransportError::PeerDropped { peer: to })?;
        peer.scratch.clear();
        encode_frame_ctx_into(&mut peer.scratch, peer.next_seq, msg, ctx);
        peer.next_seq += 1;
        let PeerTx { conn, scratch, .. } = peer;
        if let Err(e) = write_all_nb(conn, scratch) {
            conn.shutdown_both();
            *g = None;
            return Err(TransportError::Io(e.to_string()));
        }
        Ok(())
    }

    /// Batched remote send: every frame is encoded back-to-back into the
    /// peer's scratch buffer and shipped with a single write.
    fn send_batch_impl(
        &self,
        to: u32,
        msgs: &[(Message, Option<TraceCtx>)],
    ) -> Result<(), TransportError> {
        let mut g = self.peers[to as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let peer = g.as_mut().ok_or(TransportError::PeerDropped { peer: to })?;
        peer.scratch.clear();
        for (msg, ctx) in msgs {
            encode_frame_ctx_into(&mut peer.scratch, peer.next_seq, msg, *ctx);
            peer.next_seq += 1;
        }
        let PeerTx { conn, scratch, .. } = peer;
        if let Err(e) = write_all_nb(conn, scratch) {
            conn.shutdown_both();
            *g = None;
            return Err(TransportError::Io(e.to_string()));
        }
        Ok(())
    }
}

/// Receive state of one inbound connection in the poller sweep.
struct PollerConn {
    from: u32,
    conn: Conn,
    dec: FrameDecoder,
    next_seq: u64,
    /// This connection is finished (Bye, EOF, or error); skip it.
    done: bool,
    /// The peer said `Bye` — a later EOF is a polite close, not a drop.
    clean: bool,
}

/// The endpoint's single receive thread: a readiness sweep over every peer
/// connection in nonblocking mode — the epoll-style replacement for one
/// reader thread per connection. Frames decode into the shared event queue
/// under the same discipline as before (sequence check per sender, `Bye`
/// ends a connection quietly, EOF without `Bye` is a dropped peer); the
/// sweep sleeps briefly only when a full pass over the live connections
/// made no progress, and the thread exits when every connection is done.
fn poller_loop(
    mut conns: Vec<PollerConn>,
    events: Arc<BlockingQueue<Result<Envelope, TransportError>>>,
    closing: Arc<AtomicBool>,
) {
    use std::io::ErrorKind;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let mut progress = false;
        let mut live = 0usize;
        for pc in conns.iter_mut() {
            if pc.done {
                continue;
            }
            live += 1;
            match pc.conn.read(&mut buf) {
                Ok(0) => {
                    // EOF. Clean if the peer said Bye (or we initiated
                    // shutdown ourselves); a cut mid-frame or a silent
                    // close is a dropped peer.
                    pc.done = true;
                    if !pc.clean && !closing.load(Ordering::SeqCst) {
                        events.push(Err(TransportError::PeerDropped { peer: pc.from }));
                    }
                }
                Ok(n) => {
                    progress = true;
                    pc.dec.push(&buf[..n]);
                    loop {
                        match pc.dec.next_frame() {
                            Ok(None) => break,
                            Ok(Some(FrameEvent::Bye { .. })) => {
                                pc.clean = true;
                                pc.done = true;
                                break;
                            }
                            Ok(Some(FrameEvent::Msg { seq, msg, ctx })) => {
                                if seq != pc.next_seq {
                                    events.push(Err(TransportError::SequenceGap {
                                        peer: pc.from,
                                        expected: pc.next_seq,
                                        got: seq,
                                    }));
                                    pc.done = true;
                                    break;
                                }
                                pc.next_seq += 1;
                                events.push(Ok(Envelope {
                                    from: pc.from,
                                    seq,
                                    msg,
                                    ctx,
                                }));
                            }
                            Err(e) => {
                                events.push(Err(TransportError::Codec(e)));
                                pc.done = true;
                                break;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) if closing.load(Ordering::SeqCst) => pc.done = true,
                Err(e) => {
                    events.push(Err(TransportError::Io(e.to_string())));
                    pc.done = true;
                }
            }
        }
        if live == 0 {
            return;
        }
        if !progress {
            thread::sleep(Duration::from_micros(500));
        }
    }
}

impl Transport for SocketTransport {
    fn pe(&self) -> u32 {
        self.pe
    }

    fn npes(&self) -> u32 {
        self.npes
    }

    fn send(&self, to: u32, msg: &Message) -> Result<(), TransportError> {
        self.send_impl(to, msg, None)
    }

    fn send_ctx(&self, to: u32, msg: &Message, ctx: TraceCtx) -> Result<(), TransportError> {
        self.send_impl(to, msg, Some(ctx))
    }

    fn send_batch(
        &self,
        to: u32,
        msgs: &[(Message, Option<TraceCtx>)],
    ) -> Result<(), TransportError> {
        if to >= self.npes {
            return Err(TransportError::NoSuchPeer { peer: to });
        }
        if to == self.pe {
            // Loopback has no syscall to coalesce; deliver one by one.
            for (msg, ctx) in msgs {
                self.send_impl(to, msg, *ctx)?;
            }
            return Ok(());
        }
        self.send_batch_impl(to, msgs)
    }

    fn recv(&self, timeout: Option<Duration>) -> Result<Option<Envelope>, TransportError> {
        match self.events.pop(timeout) {
            Pop::Item(Ok(env)) => Ok(Some(env)),
            Pop::Item(Err(e)) => Err(e),
            Pop::TimedOut => Ok(None),
            Pop::Closed => Err(TransportError::Closed),
        }
    }

    fn shutdown(&self) {
        self.closing.store(true, Ordering::SeqCst);
        for (q, peer) in self.peers.iter().enumerate() {
            if q as u32 == self.pe {
                continue;
            }
            let mut g = peer.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(p) = g.as_mut() {
                let _ = write_all_nb(&mut p.conn, &encode_bye(p.next_seq));
                let _ = p.conn.flush();
                p.conn.shutdown_write();
            }
            *g = None;
        }
        self.events.close();
    }

    /// Kill every connection *without* the `Bye` handshake — as if the
    /// process died. Peers observe [`TransportError::PeerDropped`]. This is
    /// the fault-injection entry point used by transport fault tests.
    fn abort(&self) {
        self.closing.store(true, Ordering::SeqCst);
        for peer in &self.peers {
            let mut g = peer.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(p) = g.as_mut() {
                p.conn.shutdown_both();
            }
            *g = None;
        }
        self.events.close();
    }

    fn kind(&self) -> &'static str {
        self.kind
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        if !self.closing.load(Ordering::SeqCst) {
            self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_msg::{RegionId, ReqId};
    use std::sync::atomic::AtomicU64;
    use std::time::Instant;

    fn msg(i: u64) -> Message {
        Message::GmReadReq {
            req: ReqId(i),
            region: RegionId(2),
            offset: i,
            len: 16,
        }
    }

    #[test]
    fn tcp_mesh_roundtrip_ring() {
        let cluster = SocketTransport::tcp_cluster(3).unwrap();
        for (pe, t) in cluster.iter().enumerate() {
            let to = ((pe + 1) % 3) as u32;
            t.send(to, &msg(pe as u64)).unwrap();
        }
        for (pe, t) in cluster.iter().enumerate() {
            let expect_from = ((pe + 2) % 3) as u32;
            let env = t.recv(Some(Duration::from_secs(5))).unwrap().unwrap();
            assert_eq!(env.from, expect_from);
            assert_eq!(env.msg, msg(expect_from as u64));
        }
    }

    #[test]
    fn large_message_reassembles_across_reads() {
        // 1 MiB payload: many 64 KiB reads per frame, so the reader must
        // reassemble partial frames.
        let cluster = SocketTransport::tcp_cluster(2).unwrap();
        let big = Message::GmWriteReq {
            req: ReqId(1),
            region: RegionId(0),
            offset: 0,
            data: (0..1_048_576u32)
                .map(|i| i as u8)
                .collect::<Vec<u8>>()
                .into(),
        };
        cluster[0].send(1, &big).unwrap();
        let env = cluster[1]
            .recv(Some(Duration::from_secs(10)))
            .unwrap()
            .unwrap();
        assert_eq!(env.msg, big);
    }

    #[test]
    fn batched_send_is_indistinguishable_on_the_receiver() {
        let cluster = SocketTransport::tcp_cluster(2).unwrap();
        let ctx = TraceCtx {
            trace: 10,
            parent: 20,
        };
        let batch: Vec<(Message, Option<TraceCtx>)> = vec![
            (msg(0), None),
            (msg(1), Some(ctx)),
            (msg(2), None),
            (msg(3), None),
        ];
        cluster[0].send_batch(1, &batch).unwrap();
        cluster[0].send(1, &msg(4)).unwrap(); // seq continues after the batch
        for i in 0..5u64 {
            let env = cluster[1]
                .recv(Some(Duration::from_secs(5)))
                .unwrap()
                .unwrap();
            assert_eq!(env.seq, i);
            assert_eq!(env.msg, msg(i));
            assert_eq!(env.ctx, if i == 1 { Some(ctx) } else { None });
        }
    }

    #[cfg(unix)]
    #[test]
    fn uds_mesh_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dse-uds-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cluster = SocketTransport::uds_cluster(2, &dir).unwrap();
        cluster[1].send(0, &msg(5)).unwrap();
        let env = cluster[0]
            .recv(Some(Duration::from_secs(5)))
            .unwrap()
            .unwrap();
        assert_eq!(env.from, 1);
        assert_eq!(env.msg, msg(5));
        drop(cluster);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_send_ctx_delivers_trace_context_and_loops_back() {
        let cluster = SocketTransport::tcp_cluster(2).unwrap();
        let ctx = TraceCtx {
            trace: 5,
            parent: 6,
        };
        cluster[0].send_ctx(1, &msg(1), ctx).unwrap();
        cluster[0].send_ctx(0, &msg(2), ctx).unwrap(); // self path
        let remote = cluster[1]
            .recv(Some(Duration::from_secs(5)))
            .unwrap()
            .unwrap();
        assert_eq!(remote.ctx, Some(ctx));
        let local = cluster[0]
            .recv(Some(Duration::from_secs(5)))
            .unwrap()
            .unwrap();
        assert_eq!(local.from, 0);
        assert_eq!(local.ctx, Some(ctx));
    }

    #[test]
    fn poll_recv_sees_delivered_frames() {
        let cluster = SocketTransport::tcp_cluster(2).unwrap();
        assert_eq!(cluster[1].poll_recv().unwrap(), None);
        cluster[0].send(1, &msg(9)).unwrap();
        // Delivery crosses a real socket; spin until the poller lands it.
        let t0 = Instant::now();
        let env = loop {
            if let Some(env) = cluster[1].poll_recv().unwrap() {
                break env;
            }
            assert!(t0.elapsed() < Duration::from_secs(5), "frame never arrived");
            thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(env.msg, msg(9));
        assert_eq!(cluster[1].poll_recv().unwrap(), None);
    }

    #[test]
    fn peer_drop_without_bye_is_reported() {
        let mut cluster = SocketTransport::tcp_cluster(2).unwrap();
        let b = cluster.pop().unwrap();
        let a = cluster.pop().unwrap();
        b.abort(); // dies without the handshake
        match a.recv(Some(Duration::from_secs(5))) {
            Err(TransportError::PeerDropped { peer: 1 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn clean_shutdown_is_silent() {
        let mut cluster = SocketTransport::tcp_cluster(2).unwrap();
        let b = cluster.pop().unwrap();
        let a = cluster.pop().unwrap();
        b.send(0, &msg(1)).unwrap();
        b.shutdown(); // polite exit: Bye precedes the close
        let env = a.recv(Some(Duration::from_secs(5))).unwrap().unwrap();
        assert_eq!(env.msg, msg(1));
        // After the Bye, quiet — not an error.
        assert!(a.recv(Some(Duration::from_millis(100))).unwrap().is_none());
    }

    #[test]
    fn dial_retries_until_listener_appears() {
        // Reserve a port, free it, and only rebind it after a delay: the
        // first attempts fail and backoff carries the dialer to success.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let retry = RetryPolicy {
            max_attempts: 50,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(40),
        };
        let accepted = Arc::new(AtomicU64::new(0));
        let acc = Arc::clone(&accepted);
        let server = thread::spawn(move || {
            thread::sleep(Duration::from_millis(80));
            let l = TcpListener::bind(addr).unwrap();
            let _ = l.accept().unwrap();
            acc.store(1, Ordering::SeqCst);
        });
        let t0 = Instant::now();
        let stream = dial_tcp(addr, 0, &retry).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(40),
            "no backoff happened"
        );
        drop(stream);
        server.join().unwrap();
        assert_eq!(accepted.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn dial_gives_up_after_bounded_attempts() {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe); // nothing ever listens here again
        let retry = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
        };
        match dial_tcp(addr, 7, &retry) {
            Err(TransportError::ConnectFailed {
                peer: 7,
                attempts: 3,
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
