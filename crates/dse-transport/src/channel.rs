//! In-process channel backend: one blocking queue per PE, frames delivered
//! as encoded bytes. The cheapest backend that still exercises the full
//! encode → frame → sequence-check → decode wire path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dse_msg::{Message, TraceCtx};

use crate::mux::{BlockingQueue, FrameMux, FramePool};
use crate::{Envelope, Transport, TransportError};

type Inbox = Arc<BlockingQueue<(u32, Vec<u8>)>>;

/// In-process MPSC channel transport. Build a whole cluster with
/// [`ChannelTransport::cluster`]; endpoint `i` of the returned vector
/// belongs to PE `i`.
pub struct ChannelTransport {
    mux: FrameMux,
    inboxes: Arc<Vec<Inbox>>,
    aborted: AtomicBool,
}

impl ChannelTransport {
    /// Create `npes` connected endpoints.
    pub fn cluster(npes: u32) -> Vec<ChannelTransport> {
        let inboxes: Arc<Vec<Inbox>> = Arc::new(
            (0..npes)
                .map(|_| Arc::new(BlockingQueue::default()))
                .collect(),
        );
        // One frame pool for the whole cluster: a receiver returns spent
        // buffers into circulation for every sender.
        let pool = Arc::new(FramePool::default());
        (0..npes)
            .map(|pe| ChannelTransport {
                mux: FrameMux::with_pool(pe, npes, Arc::clone(&pool)),
                inboxes: Arc::clone(&inboxes),
                aborted: AtomicBool::new(false),
            })
            .collect()
    }

    fn inbox(&self) -> &Inbox {
        &self.inboxes[self.mux.pe() as usize]
    }

    fn send_impl(
        &self,
        to: u32,
        msg: &Message,
        ctx: Option<TraceCtx>,
    ) -> Result<(), TransportError> {
        if self.aborted.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        self.mux.send_frame(to, msg, ctx, |frame| {
            self.inboxes[to as usize].push((self.mux.pe(), frame))
        })
    }
}

impl Transport for ChannelTransport {
    fn pe(&self) -> u32 {
        self.mux.pe()
    }

    fn npes(&self) -> u32 {
        self.mux.npes()
    }

    fn send(&self, to: u32, msg: &Message) -> Result<(), TransportError> {
        self.send_impl(to, msg, None)
    }

    fn send_ctx(&self, to: u32, msg: &Message, ctx: TraceCtx) -> Result<(), TransportError> {
        self.send_impl(to, msg, Some(ctx))
    }

    fn send_batch(
        &self,
        to: u32,
        msgs: &[(Message, Option<TraceCtx>)],
    ) -> Result<(), TransportError> {
        if self.aborted.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        // One pooled buffer, one queue push (one lock + one wakeup) for the
        // whole run — the receiver's streaming decoder splits it back into
        // frames.
        self.mux.send_frames(to, msgs, |frames| {
            self.inboxes[to as usize].push((self.mux.pe(), frames))
        })
    }

    fn recv(&self, timeout: Option<Duration>) -> Result<Option<Envelope>, TransportError> {
        self.mux.recv_via(self.inbox(), timeout)
    }

    fn poll_recv(&self) -> Result<Option<Envelope>, TransportError> {
        // The trait default (zero-timeout recv) would never ingest queued
        // frames here — recv_via's deadline check precedes the inbox pop.
        self.mux.poll_via(self.inbox())
    }

    fn shutdown(&self) {
        // Announce Bye to every peer, then close our own inbox so a
        // blocked `recv` wakes with `Closed` once drained.
        for to in 0..self.mux.npes() {
            if to != self.mux.pe() {
                self.mux.send_bye(to, |bye| {
                    self.inboxes[to as usize].push((self.mux.pe(), bye))
                });
            }
        }
        self.inbox().close();
    }

    fn abort(&self) {
        // Die without the Bye handshake: close our inbox (local recv drains
        // then reports `Closed`) and refuse further sends. Peers discover
        // the death when their next send to us returns `PeerDropped`.
        self.aborted.store(true, Ordering::Release);
        self.inbox().close();
    }

    fn kind(&self) -> &'static str {
        "channel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_msg::{RegionId, ReqId};

    fn msg(i: u64) -> Message {
        Message::GmReadReq {
            req: ReqId(i),
            region: RegionId(1),
            offset: i,
            len: 4,
        }
    }

    #[test]
    fn roundtrip_between_two_pes() {
        let mut cluster = ChannelTransport::cluster(2);
        let b = cluster.pop().unwrap();
        let a = cluster.pop().unwrap();
        a.send(1, &msg(7)).unwrap();
        let env = b.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        assert_eq!(env.from, 0);
        assert_eq!(env.seq, 0);
        assert_eq!(env.msg, msg(7));
    }

    #[test]
    fn self_send_loops_back_through_the_codec() {
        let cluster = ChannelTransport::cluster(1);
        let a = &cluster[0];
        a.send(0, &msg(3)).unwrap();
        let env = a.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        assert_eq!(env.from, 0);
        assert_eq!(env.msg, msg(3));
    }

    #[test]
    fn sequence_numbers_count_per_destination() {
        let cluster = ChannelTransport::cluster(3);
        cluster[0].send(1, &msg(0)).unwrap();
        cluster[0].send(2, &msg(1)).unwrap();
        cluster[0].send(1, &msg(2)).unwrap();
        let e1 = cluster[1]
            .recv(Some(Duration::from_secs(1)))
            .unwrap()
            .unwrap();
        let e2 = cluster[1]
            .recv(Some(Duration::from_secs(1)))
            .unwrap()
            .unwrap();
        let e3 = cluster[2]
            .recv(Some(Duration::from_secs(1)))
            .unwrap()
            .unwrap();
        assert_eq!((e1.seq, e2.seq, e3.seq), (0, 1, 0));
    }

    #[test]
    fn send_ctx_delivers_trace_context() {
        let mut cluster = ChannelTransport::cluster(2);
        let b = cluster.pop().unwrap();
        let a = cluster.pop().unwrap();
        let ctx = TraceCtx {
            trace: 77,
            parent: 88,
        };
        a.send_ctx(1, &msg(1), ctx).unwrap();
        a.send(1, &msg(2)).unwrap();
        let e1 = b.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        let e2 = b.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        assert_eq!(e1.ctx, Some(ctx));
        assert_eq!((e1.seq, e2.seq), (0, 1)); // one seq space for both kinds
        assert_eq!(e2.ctx, None);
    }

    #[test]
    fn poll_recv_pops_queued_frames_without_waiting() {
        let mut cluster = ChannelTransport::cluster(2);
        let b = cluster.pop().unwrap();
        let a = cluster.pop().unwrap();
        assert_eq!(b.poll_recv().unwrap(), None);
        a.send(1, &msg(1)).unwrap();
        a.send(1, &msg(2)).unwrap();
        // Both frames are queued but undecoded: poll must ingest them.
        let e1 = b.poll_recv().unwrap().unwrap();
        let e2 = b.poll_recv().unwrap().unwrap();
        assert_eq!((e1.msg, e2.msg), (msg(1), msg(2)));
        assert_eq!(b.poll_recv().unwrap(), None);
        // Drain-then-closed, same as recv.
        a.send(1, &msg(3)).unwrap();
        b.shutdown();
        assert_eq!(b.poll_recv().unwrap().unwrap().msg, msg(3));
        assert_eq!(b.poll_recv(), Err(TransportError::Closed));
    }

    #[test]
    fn frame_buffers_recycle_through_the_cluster_pool() {
        let mut cluster = ChannelTransport::cluster(2);
        let b = cluster.pop().unwrap();
        let a = cluster.pop().unwrap();
        assert_eq!(a.mux.pool().pooled(), 0);
        for i in 0..8 {
            a.send(1, &msg(i)).unwrap();
            b.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        }
        // The receiver returned the spent encode buffers; the shared pool
        // holds at least one warm buffer for the next sender.
        assert!(a.mux.pool().pooled() >= 1);
        assert!(b.mux.pool().pooled() >= 1);
    }

    #[test]
    fn timeout_returns_none() {
        let cluster = ChannelTransport::cluster(1);
        let got = cluster[0].recv(Some(Duration::from_millis(10))).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn shutdown_drains_then_closes() {
        let mut cluster = ChannelTransport::cluster(2);
        let b = cluster.pop().unwrap();
        let a = cluster.pop().unwrap();
        a.send(0, &msg(1)).unwrap();
        a.shutdown();
        // The already-delivered self-send drains first...
        let env = a.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        assert_eq!(env.msg, msg(1));
        // ...then the endpoint reports closure.
        assert_eq!(a.recv(None), Err(TransportError::Closed));
        // Peer sees our Bye as a normal control frame (no envelope), and a
        // send to the closed endpoint reports the drop.
        assert!(b.recv(Some(Duration::from_millis(20))).unwrap().is_none());
        assert_eq!(
            b.send(0, &msg(2)),
            Err(TransportError::PeerDropped { peer: 0 })
        );
    }

    #[test]
    fn abort_skips_bye_and_refuses_sends() {
        let mut cluster = ChannelTransport::cluster(2);
        let b = cluster.pop().unwrap();
        let a = cluster.pop().unwrap();
        a.abort();
        // The dead endpoint refuses its own sends and reports closure.
        assert_eq!(a.send(1, &msg(1)), Err(TransportError::Closed));
        assert_eq!(a.recv(None), Err(TransportError::Closed));
        // No Bye was delivered; the peer only learns on its next send.
        assert!(b.recv(Some(Duration::from_millis(20))).unwrap().is_none());
        assert_eq!(
            b.send(0, &msg(2)),
            Err(TransportError::PeerDropped { peer: 0 })
        );
    }
}
