//! # dse-transport — the pluggable message-exchange substrate
//!
//! The paper's kernels talk to each other through a *message exchange
//! mechanism*: a request/response path over the LAN plus an own-node fast
//! path. This crate is that layer made pluggable. Everything above it —
//! the live engine's kernel loops, the Parallel API's request create /
//! response analyze modules, the telemetry plane — speaks [`Message`]s to
//! a [`Transport`] and never cares what carries the bytes.
//!
//! Three backends ship here:
//!
//! * [`ChannelTransport`] — in-process queues carrying *encoded frames*.
//!   Even between threads of one process, every message is encoded, framed,
//!   sequence-checked, and decoded, so the wire path is always exercised.
//! * [`SocketTransport`] — real byte streams: framed TCP or Unix-domain
//!   sockets with connect retry under bounded exponential backoff, per-peer
//!   reader threads, and a `Bye` clean-shutdown handshake (an EOF without
//!   `Bye` is reported as a dropped peer).
//! * [`SimBusTransport`] — the paper's shared-bus Ethernet in miniature: a
//!   single mutex serializes the medium (one frame in flight at a time)
//!   and own-node sends bypass the bus entirely, mirroring the
//!   loopback/LAN split of the simulator's network path.
//!
//! All backends share frame format and discipline (see `dse_msg::frame`):
//! length-prefixed frames, per-(sender → receiver) sequence numbers
//! verified on receipt, streaming reassembly via `FrameDecoder`.

#![warn(missing_docs)]

mod channel;
mod error;
mod fault;
mod mux;
mod simbus;
mod socket;

use std::time::Duration;

use dse_msg::{Message, TraceCtx};

pub use channel::ChannelTransport;
pub use dse_msg::TraceCtx as MsgTraceCtx;
pub use error::TransportError;
pub use fault::{FaultPlan, FaultyTransport};
pub use mux::{BlockingQueue, Pop};
pub use simbus::{BusParams, BusStats, SimBusTransport};
pub use socket::{RetryPolicy, SocketTransport};

/// One received message with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending PE.
    pub from: u32,
    /// Per-(sender → receiver) sequence number of the carrying frame.
    pub seq: u64,
    /// The decoded message.
    pub msg: Message,
    /// Causal trace context, when the sender attached one.
    pub ctx: Option<TraceCtx>,
}

/// A reliable, ordered, peer-addressed message carrier.
///
/// Implementations are internally synchronized: `send` may be called from
/// several threads (the kernel loop and the application thread both send),
/// while `recv` assumes a single consumer — the PE's kernel loop.
pub trait Transport: Send + Sync {
    /// This endpoint's PE rank.
    fn pe(&self) -> u32;

    /// Number of PEs in the cluster.
    fn npes(&self) -> u32;

    /// Send `msg` to PE `to` (sending to self is allowed and loops back).
    fn send(&self, to: u32, msg: &Message) -> Result<(), TransportError>;

    /// Send `msg` with a causal trace context riding the same frame. All
    /// shipped backends propagate the context; the default implementation
    /// drops it (for minimal external impls) and otherwise behaves exactly
    /// like [`send`](Transport::send).
    fn send_ctx(&self, to: u32, msg: &Message, ctx: TraceCtx) -> Result<(), TransportError> {
        let _ = ctx;
        self.send(to, msg)
    }

    /// Send several messages to one peer as a single batch, in order.
    ///
    /// The default sends each message individually. Backends that write to
    /// a real byte stream override this to coalesce the frames into one
    /// write — one syscall instead of one per message (Nagle-for-GM at the
    /// frame layer, but driven by the caller's natural batch boundary, so
    /// it adds no delay). Sequence numbers are allocated per frame exactly
    /// as with individual sends, so receivers cannot tell the difference.
    fn send_batch(
        &self,
        to: u32,
        msgs: &[(Message, Option<TraceCtx>)],
    ) -> Result<(), TransportError> {
        for (msg, ctx) in msgs {
            match ctx {
                Some(c) => self.send_ctx(to, msg, *c)?,
                None => self.send(to, msg)?,
            }
        }
        Ok(())
    }

    /// Receive the next message. `None` timeout blocks indefinitely;
    /// `Ok(None)` means the timeout elapsed with nothing to deliver.
    fn recv(&self, timeout: Option<Duration>) -> Result<Option<Envelope>, TransportError>;

    /// Non-blocking receive: return an already-available message or
    /// `Ok(None)` immediately, never waiting. This is the readiness path
    /// the task scheduler sweeps — it must be cheap when idle and must
    /// deliver any message a blocking [`recv`](Transport::recv) would have
    /// found ready. The default delegates to a zero-timeout `recv`, which
    /// is correct for backends whose zero-timeout `recv` still pops an
    /// available item (backends where it does not must override this).
    fn poll_recv(&self) -> Result<Option<Envelope>, TransportError> {
        self.recv(Some(Duration::ZERO))
    }

    /// Announce clean shutdown to all peers (`Bye` handshake) and release
    /// the endpoint. After this, `recv` drains already-delivered messages
    /// and then reports [`TransportError::Closed`].
    fn shutdown(&self);

    /// Kill the endpoint *without* the clean-shutdown handshake, as if the
    /// process died mid-run: no `Bye` is sent, local `recv` reports
    /// [`TransportError::Closed`] once drained, and peers observe the
    /// failure on their next interaction ([`TransportError::PeerDropped`]).
    /// Backends without a distinct abrupt path fall back to `shutdown`.
    fn abort(&self) {
        self.shutdown();
    }

    /// Short backend name for diagnostics ("channel", "tcp", "uds", "bus").
    fn kind(&self) -> &'static str;
}
