//! Deterministic fault injection for any [`Transport`] backend.
//!
//! [`FaultyTransport`] wraps an endpoint and perturbs its *send* path
//! according to a seeded [`FaultPlan`]: drop, duplicate, delay, corrupt
//! telemetry payloads, or kill the endpoint outright at its N-th send.
//! Decisions come from a stateless hash of (seed, edge, per-edge send
//! counter, fault kind), so a plan is reproducible and independent of
//! wall-clock timing.
//!
//! Faults are scoped to traffic the runtime is expected to recover from:
//! global-memory requests/responses (covered by the live engine's retry
//! and request-dedup machinery) and telemetry deltas (covered by sequence
//! gap accounting and the final absolute rollup). Control traffic —
//! barrier, lock, exit, shutdown, abort — passes through unharmed; the
//! failure model treats it as reliable, and the `disconnect` fault is the
//! way to break it (the whole endpoint dies, which peers observe).
//!
//! Injection happens *above* the wire framing, so a dropped message never
//! shows up as a frame sequence gap: the fault models a lost request, not
//! a corrupted stream.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dse_msg::{Message, TraceCtx};

use crate::{Envelope, Transport, TransportError};

/// A seeded, per-send fault schedule. Probabilities are in permille
/// (units of 0.1%), so plans stay integral and hashable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every decision hash.
    pub seed: u64,
    /// Probability (permille) of silently dropping a faultable message.
    pub drop_permille: u16,
    /// Probability (permille) of sending a faultable message twice.
    pub dup_permille: u16,
    /// Probability (permille) of corrupting a telemetry payload.
    pub corrupt_permille: u16,
    /// Probability (permille) and duration of an added send delay.
    pub delay: Option<(u16, Duration)>,
    /// Kill endpoint `pe` (no Bye) once it has issued `frame` sends.
    pub disconnect: Option<(u32, u64)>,
}

impl FaultPlan {
    /// Parse a plan from the `dse-run --fault-plan` spec: comma-separated
    /// `key=value` terms, e.g.
    /// `seed=7,drop=10,dup=5,corrupt=3,delay=20:2,disconnect=2:40`
    /// (drop/dup/corrupt in permille; `delay=permille:millis`;
    /// `disconnect=pe:frame`).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for term in spec.split(',').filter(|t| !t.is_empty()) {
            let (key, val) = term
                .split_once('=')
                .ok_or_else(|| format!("fault term `{term}` is not key=value"))?;
            let permille = |v: &str| -> Result<u16, String> {
                let p: u16 = v
                    .parse()
                    .map_err(|_| format!("`{key}={v}`: expected an integer permille"))?;
                if p > 1000 {
                    return Err(format!("`{key}={v}`: permille must be 0..=1000"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    plan.seed = val
                        .parse()
                        .map_err(|_| format!("`seed={val}`: expected an integer"))?
                }
                "drop" => plan.drop_permille = permille(val)?,
                "dup" => plan.dup_permille = permille(val)?,
                "corrupt" => plan.corrupt_permille = permille(val)?,
                "delay" => {
                    let (p, ms) = val
                        .split_once(':')
                        .ok_or_else(|| format!("`delay={val}`: expected permille:millis"))?;
                    let ms: u64 = ms
                        .parse()
                        .map_err(|_| format!("`delay={val}`: bad millis"))?;
                    plan.delay = Some((permille(p)?, Duration::from_millis(ms)));
                }
                "disconnect" => {
                    let (pe, frame) = val
                        .split_once(':')
                        .ok_or_else(|| format!("`disconnect={val}`: expected pe:frame"))?;
                    let pe: u32 = pe
                        .parse()
                        .map_err(|_| format!("`disconnect={val}`: bad pe"))?;
                    let frame: u64 = frame
                        .parse()
                        .map_err(|_| format!("`disconnect={val}`: bad frame count"))?;
                    plan.disconnect = Some((pe, frame));
                }
                other => return Err(format!("unknown fault term `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Roll a permille decision for send number `n` on edge `from → to`.
    fn roll(&self, salt: u64, from: u32, to: u32, n: u64, permille: u16) -> bool {
        if permille == 0 {
            return false;
        }
        let edge = (u64::from(from) << 32) | u64::from(to);
        let h = splitmix(
            self.seed
                ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ edge.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
                ^ n.wrapping_mul(0x1656_67b1_9e37_79f9),
        );
        (h % 1000) < u64::from(permille)
    }
}

/// splitmix64 finalizer: cheap, well-mixed, stateless.
fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

const SALT_DROP: u64 = 1;
const SALT_DUP: u64 = 2;
const SALT_CORRUPT: u64 = 3;
const SALT_DELAY: u64 = 4;

/// Is this a message the runtime can recover if it goes missing?
fn recoverable(msg: &Message) -> bool {
    matches!(
        msg,
        Message::GmReadReq { .. }
            | Message::GmWriteReq { .. }
            | Message::GmBatchReq { .. }
            | Message::GmFetchAddReq { .. }
            | Message::GmReadResp { .. }
            | Message::GmWriteAck { .. }
            | Message::GmBatchResp { .. }
            | Message::GmFetchAddResp { .. }
            | Message::Telemetry { .. }
    )
}

/// A [`Transport`] wrapper that injects the faults of a [`FaultPlan`].
/// Wrap every endpoint of a cluster with the same plan; only the endpoint
/// named by `disconnect` dies, and probabilistic faults are rolled per
/// (edge, send-counter) so each endpoint misbehaves independently.
pub struct FaultyTransport {
    inner: Arc<dyn Transport>,
    plan: FaultPlan,
    /// Per-destination send counters feeding the decision hash.
    edge_sends: Vec<AtomicU64>,
    /// Total sends issued by this endpoint (the disconnect trigger).
    total_sends: AtomicU64,
    dead: AtomicBool,
}

impl FaultyTransport {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: Arc<dyn Transport>, plan: FaultPlan) -> FaultyTransport {
        let npes = inner.npes();
        FaultyTransport {
            inner,
            plan,
            edge_sends: (0..npes).map(|_| AtomicU64::new(0)).collect(),
            total_sends: AtomicU64::new(0),
            dead: AtomicBool::new(false),
        }
    }

    /// The wrapped endpoint.
    pub fn inner(&self) -> &Arc<dyn Transport> {
        &self.inner
    }

    /// Forward to the wrapped endpoint, preserving any trace context.
    fn fwd(&self, to: u32, msg: &Message, ctx: Option<TraceCtx>) -> Result<(), TransportError> {
        match ctx {
            Some(c) => self.inner.send_ctx(to, msg, c),
            None => self.inner.send(to, msg),
        }
    }

    /// The one fault path: traced and untraced sends roll the *same*
    /// per-edge decisions, so enabling tracing never changes which
    /// messages a seeded plan drops, duplicates, delays or corrupts.
    fn send_impl(
        &self,
        to: u32,
        msg: &Message,
        ctx: Option<TraceCtx>,
    ) -> Result<(), TransportError> {
        if self.dead.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        let total = self.total_sends.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some((pe, at)) = self.plan.disconnect {
            if pe == self.inner.pe() && total >= at {
                // The endpoint "crashes": connections die without Bye and
                // every later operation here reports closure.
                self.dead.store(true, Ordering::Release);
                self.inner.abort();
                return Err(TransportError::Closed);
            }
        }
        if to >= self.edge_sends.len() as u32 {
            return Err(TransportError::NoSuchPeer { peer: to });
        }
        let from = self.inner.pe();
        let n = self.edge_sends[to as usize].fetch_add(1, Ordering::Relaxed);
        if let Some((p, d)) = self.plan.delay {
            if self.plan.roll(SALT_DELAY, from, to, n, p) {
                std::thread::sleep(d);
            }
        }
        if recoverable(msg) {
            if self
                .plan
                .roll(SALT_DROP, from, to, n, self.plan.drop_permille)
            {
                // Lost in flight: the caller sees success, nothing arrives.
                return Ok(());
            }
            if let Message::Telemetry { pe, seq, payload } = msg {
                if !payload.is_empty()
                    && self
                        .plan
                        .roll(SALT_CORRUPT, from, to, n, self.plan.corrupt_permille)
                {
                    // Flip the format-version byte so the delta is
                    // undecodable rather than silently wrong.
                    let mut bad = payload.clone();
                    bad[0] ^= 0xFF;
                    return self.fwd(
                        to,
                        &Message::Telemetry {
                            pe: *pe,
                            seq: *seq,
                            payload: bad,
                        },
                        ctx,
                    );
                }
            }
            if self
                .plan
                .roll(SALT_DUP, from, to, n, self.plan.dup_permille)
            {
                self.fwd(to, msg, ctx)?;
            }
        }
        self.fwd(to, msg, ctx)
    }
}

impl Transport for FaultyTransport {
    fn pe(&self) -> u32 {
        self.inner.pe()
    }

    fn npes(&self) -> u32 {
        self.inner.npes()
    }

    fn send(&self, to: u32, msg: &Message) -> Result<(), TransportError> {
        self.send_impl(to, msg, None)
    }

    fn send_ctx(&self, to: u32, msg: &Message, ctx: TraceCtx) -> Result<(), TransportError> {
        self.send_impl(to, msg, Some(ctx))
    }

    fn recv(&self, timeout: Option<Duration>) -> Result<Option<Envelope>, TransportError> {
        self.inner.recv(timeout)
    }

    fn poll_recv(&self) -> Result<Option<Envelope>, TransportError> {
        // Faults are injected on the send side; receive is a passthrough,
        // so forward to the inner backend's (possibly overridden) poll.
        self.inner.poll_recv()
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }

    fn abort(&self) {
        self.inner.abort();
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChannelTransport;
    use dse_msg::{RegionId, ReqId};

    fn gm(i: u64) -> Message {
        Message::GmReadReq {
            req: ReqId(i),
            region: RegionId(1),
            offset: i,
            len: 4,
        }
    }

    fn wrap(npes: u32, plan: &FaultPlan) -> Vec<FaultyTransport> {
        ChannelTransport::cluster(npes)
            .into_iter()
            .map(|t| FaultyTransport::new(Arc::new(t), plan.clone()))
            .collect()
    }

    #[test]
    fn parse_full_spec() {
        let plan =
            FaultPlan::parse("seed=7,drop=10,dup=5,corrupt=3,delay=20:2,disconnect=2:40").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.drop_permille, 10);
        assert_eq!(plan.dup_permille, 5);
        assert_eq!(plan.corrupt_permille, 3);
        assert_eq!(plan.delay, Some((20, Duration::from_millis(2))));
        assert_eq!(plan.disconnect, Some((2, 40)));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("drop=1001").is_err());
        assert!(FaultPlan::parse("warp=1").is_err());
        assert!(FaultPlan::parse("disconnect=2").is_err());
        assert!(FaultPlan::parse("delay=5").is_err());
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan {
            seed: 42,
            drop_permille: 300,
            ..FaultPlan::default()
        };
        let a: Vec<bool> = (0..64)
            .map(|n| plan.roll(SALT_DROP, 0, 1, n, plan.drop_permille))
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|n| plan.roll(SALT_DROP, 0, 1, n, plan.drop_permille))
            .collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "300 permille never fired in 64 rolls");
        assert!(!a.iter().all(|&x| x), "300 permille always fired");
    }

    #[test]
    fn drop_loses_gm_but_never_control() {
        let plan = FaultPlan {
            seed: 1,
            drop_permille: 1000, // drop everything faultable
            ..FaultPlan::default()
        };
        let cluster = wrap(2, &plan);
        cluster[0].send(1, &gm(1)).unwrap();
        assert!(
            cluster[1]
                .recv(Some(Duration::from_millis(30)))
                .unwrap()
                .is_none(),
            "dropped GM request arrived"
        );
        // Control traffic is exempt from probabilistic faults.
        let ctrl = Message::BarrierRelease {
            barrier: 1,
            epoch: 2,
        };
        cluster[0].send(1, &ctrl).unwrap();
        let env = cluster[1].recv(Some(Duration::from_secs(1))).unwrap();
        assert_eq!(env.unwrap().msg, ctrl);
    }

    #[test]
    fn dup_delivers_twice() {
        let plan = FaultPlan {
            seed: 9,
            dup_permille: 1000,
            ..FaultPlan::default()
        };
        let cluster = wrap(2, &plan);
        cluster[0].send(1, &gm(4)).unwrap();
        let one = cluster[1].recv(Some(Duration::from_secs(1))).unwrap();
        let two = cluster[1].recv(Some(Duration::from_secs(1))).unwrap();
        assert_eq!(one.unwrap().msg, gm(4));
        assert_eq!(two.unwrap().msg, gm(4));
    }

    #[test]
    fn corrupt_flips_telemetry_version_byte() {
        let plan = FaultPlan {
            seed: 3,
            corrupt_permille: 1000,
            ..FaultPlan::default()
        };
        let cluster = wrap(2, &plan);
        let t = Message::Telemetry {
            pe: 0,
            seq: 1,
            payload: vec![2, 0, 0, 0],
        };
        cluster[0].send(1, &t).unwrap();
        let env = cluster[1]
            .recv(Some(Duration::from_secs(1)))
            .unwrap()
            .unwrap();
        match env.msg {
            Message::Telemetry { payload, .. } => assert_eq!(payload[0], 2 ^ 0xFF),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn traced_sends_roll_the_same_faults_and_keep_ctx() {
        let plan = FaultPlan {
            seed: 42,
            drop_permille: 300,
            ..FaultPlan::default()
        };
        // Which of 64 sends survive must not depend on tracing being on.
        let untraced = wrap(2, &plan);
        for i in 0..64 {
            untraced[0].send(1, &gm(i)).unwrap();
        }
        let mut got_plain = Vec::new();
        while let Ok(Some(env)) = untraced[1].recv(Some(Duration::from_millis(30))) {
            got_plain.push(env.msg);
        }
        let traced = wrap(2, &plan);
        let ctx = TraceCtx {
            trace: 1,
            parent: 2,
        };
        for i in 0..64 {
            traced[0].send_ctx(1, &gm(i), ctx).unwrap();
        }
        let mut got_traced = Vec::new();
        while let Ok(Some(env)) = traced[1].recv(Some(Duration::from_millis(30))) {
            assert_eq!(env.ctx, Some(ctx));
            got_traced.push(env.msg);
        }
        assert!(!got_plain.is_empty() && got_plain.len() < 64);
        assert_eq!(got_plain, got_traced);
    }

    #[test]
    fn disconnect_kills_only_the_named_endpoint() {
        let plan = FaultPlan {
            seed: 5,
            disconnect: Some((0, 3)),
            ..FaultPlan::default()
        };
        let cluster = wrap(2, &plan);
        cluster[0].send(1, &gm(1)).unwrap();
        cluster[0].send(1, &gm(2)).unwrap();
        // Third send trips the disconnect: nothing is delivered and the
        // endpoint reports closure from then on.
        assert_eq!(cluster[0].send(1, &gm(3)), Err(TransportError::Closed));
        assert_eq!(cluster[0].send(1, &gm(4)), Err(TransportError::Closed));
        assert_eq!(cluster[0].recv(None), Err(TransportError::Closed));
        // The survivor got the first two messages, then silence — and its
        // next send to the dead peer reports the drop.
        for i in 1..=2 {
            let env = cluster[1].recv(Some(Duration::from_secs(1))).unwrap();
            assert_eq!(env.unwrap().msg, gm(i));
        }
        assert_eq!(
            cluster[1].send(0, &gm(9)),
            Err(TransportError::PeerDropped { peer: 0 })
        );
    }
}
