//! Transport-layer errors. These compose with [`CodecError`] (which
//! implements `std::error::Error`) so callers can box or chain them.

use std::fmt;

use dse_msg::CodecError;

/// Errors surfaced by a [`crate::Transport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// A frame or message failed to decode — the stream is corrupt.
    Codec(CodecError),
    /// An I/O error on the underlying socket.
    Io(String),
    /// The peer's stream ended without a `Bye` handshake.
    PeerDropped {
        /// The PE whose connection vanished.
        peer: u32,
    },
    /// A frame arrived out of sequence — reordering or loss.
    SequenceGap {
        /// The sending PE.
        peer: u32,
        /// The sequence number we expected next.
        expected: u64,
        /// The sequence number the frame carried.
        got: u64,
    },
    /// The destination PE does not exist in this cluster.
    NoSuchPeer {
        /// The bogus destination rank.
        peer: u32,
    },
    /// Could not establish a connection within the retry budget.
    ConnectFailed {
        /// The PE we were dialing.
        peer: u32,
        /// How many attempts were made.
        attempts: u32,
        /// The final error, stringified.
        last: String,
    },
    /// The endpoint has been shut down.
    Closed,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Codec(e) => write!(f, "codec error: {e}"),
            TransportError::Io(e) => write!(f, "i/o error: {e}"),
            TransportError::PeerDropped { peer } => {
                write!(f, "peer {peer} dropped (stream ended without Bye)")
            }
            TransportError::SequenceGap {
                peer,
                expected,
                got,
            } => write!(
                f,
                "sequence gap from peer {peer}: expected frame {expected}, got {got}"
            ),
            TransportError::NoSuchPeer { peer } => write!(f, "no such peer {peer}"),
            TransportError::ConnectFailed {
                peer,
                attempts,
                last,
            } => write!(
                f,
                "connect to peer {peer} failed after {attempts} attempts: {last}"
            ),
            TransportError::Closed => write!(f, "transport closed"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for TransportError {
    fn from(e: CodecError) -> Self {
        TransportError::Codec(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e.to_string())
    }
}
