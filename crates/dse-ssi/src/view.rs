//! The single-system-image cluster view: one process table, one resource
//! picture, regardless of which node you ask from.

use dse_kernel::ClusterShared;
use dse_msg::{GlobalPid, NodeId};

/// Lifecycle state of a DSE process in the cluster-wide table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Invoked and not yet finished.
    Running,
    /// Asked to terminate cooperatively, not yet finished.
    Terminating,
    /// Body returned.
    Exited,
}

/// One row of the cluster-wide `ps` listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessEntry {
    /// Cluster-wide pid (the SSI's flat id space).
    pub pid: GlobalPid,
    /// Node hosting the process.
    pub node: NodeId,
    /// Physical machine hosting that node.
    pub machine: usize,
    /// Lifecycle state.
    pub state: ProcState,
}

/// One row of the cluster-wide node listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// The node.
    pub node: NodeId,
    /// Physical machine hosting it.
    pub machine: usize,
    /// DSE kernels co-resident on that machine (1 on a real cluster, more
    /// on a virtual cluster).
    pub kernels_on_machine: usize,
    /// Application processes currently running on this node.
    pub running: usize,
    /// Runtime messages sent by this node's kernel+API so far.
    pub messages: u64,
    /// Global-memory traffic (bytes read + written) issued by this node.
    pub gm_bytes: u64,
    /// Remote GM operations (reads + writes) issued by this node — the
    /// share of its traffic that crossed node boundaries.
    pub gm_remote_ops: u64,
}

/// A read-only single-system-image view over a cluster.
///
/// ```
/// use dse_api::{DseProgram, Platform};
/// use dse_ssi::ClusterView;
/// use std::sync::Arc;
///
/// DseProgram::new(Platform::sunos_sparc()).run(3, |ctx| {
///     ctx.barrier(); // all ranks registered
///     let shared = Arc::clone(ctx.shared());
///     let view = ClusterView::new(&shared);
///     assert_eq!(view.ps().len(), 3); // one flat pid space
///     ctx.barrier();
/// });
/// ```
pub struct ClusterView<'a> {
    shared: &'a ClusterShared,
}

impl<'a> ClusterView<'a> {
    /// Build the view.
    pub fn new(shared: &'a ClusterShared) -> ClusterView<'a> {
        ClusterView { shared }
    }

    /// Cluster-wide process table (the SSI `ps`).
    pub fn ps(&self) -> Vec<ProcessEntry> {
        self.shared
            .all_apps()
            .into_iter()
            .map(|(pid, _)| {
                let state = if self.shared.is_exited(pid) {
                    ProcState::Exited
                } else if self.shared.is_terminated(pid) {
                    ProcState::Terminating
                } else {
                    ProcState::Running
                };
                ProcessEntry {
                    pid,
                    node: pid.node(),
                    machine: self.shared.machine_of(pid.node()),
                    state,
                }
            })
            .collect()
    }

    /// Find one process.
    pub fn find(&self, pid: GlobalPid) -> Option<ProcessEntry> {
        self.ps().into_iter().find(|e| e.pid == pid)
    }

    /// Cluster-wide node table.
    pub fn nodes(&self) -> Vec<NodeInfo> {
        let ps = self.ps();
        (0..self.shared.nnodes())
            .map(|n| {
                let node = NodeId(n as u16);
                let machine = self.shared.machine_of(node);
                let ks = self.shared.stats.snapshot_pe(n);
                NodeInfo {
                    node,
                    machine,
                    kernels_on_machine: self.shared.spec.kernels_on(machine),
                    running: ps
                        .iter()
                        .filter(|e| e.node == node && e.state == ProcState::Running)
                        .count(),
                    messages: ks.messages,
                    gm_bytes: ks.gm_bytes_read + ks.gm_bytes_written,
                    gm_remote_ops: ks.gm_remote_reads + ks.gm_remote_writes,
                }
            })
            .collect()
    }

    /// Running processes per physical machine (load picture for placement).
    pub fn machine_loads(&self) -> Vec<usize> {
        let ps = self.ps();
        (0..self.shared.spec.machines_used())
            .map(|m| {
                ps.iter()
                    .filter(|e| e.machine == m && e.state == ProcState::Running)
                    .count()
            })
            .collect()
    }

    /// Render the node table as text (the user-facing SSI load utility):
    /// one row per node with its placement and runtime traffic counters.
    pub fn nodes_text(&self) -> String {
        let mut out = String::from(
            "NODE  MACHINE  KERNELS  RUNNING  MSGS      GM-BYTES    REMOTE-OPS
",
        );
        for n in self.nodes() {
            out.push_str(&format!(
                "{:<5} {:<8} {:<8} {:<8} {:<9} {:<11} {}
",
                n.node.0,
                n.machine,
                n.kernels_on_machine,
                n.running,
                n.messages,
                n.gm_bytes,
                n.gm_remote_ops
            ));
        }
        out
    }

    /// Render the `ps` table as text (the user-facing SSI utility).
    pub fn ps_text(&self) -> String {
        let mut out = String::from("PID        NODE  MACHINE  STATE\n");
        for e in self.ps() {
            let state = match e.state {
                ProcState::Running => "running",
                ProcState::Terminating => "terminating",
                ProcState::Exited => "exited",
            };
            out.push_str(&format!(
                "{:<10} {:<5} {:<8} {}\n",
                e.pid.0, e.node.0, e.machine, state
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_kernel::DseConfig;
    use dse_platform::{ClusterSpec, Platform};
    use dse_sim::{ProcId, ResourceId};

    fn shared(p: usize) -> ClusterShared {
        let spec = ClusterSpec::paper(Platform::sunos_sparc(), p);
        let cpus = (0..spec.machines_used())
            .map(ResourceId::from_index)
            .collect();
        ClusterShared::new(spec, DseConfig::default(), cpus)
    }

    #[test]
    fn ps_reflects_registration_and_exit() {
        let s = shared(3);
        let a = GlobalPid::new(NodeId(0), 1);
        let b = GlobalPid::new(NodeId(2), 1);
        s.register_app(a, ProcId::from_index(10));
        s.register_app(b, ProcId::from_index(11));
        let view = ClusterView::new(&s);
        let ps = view.ps();
        assert_eq!(ps.len(), 2);
        assert!(ps.iter().all(|e| e.state == ProcState::Running));
        s.mark_exited(a);
        assert_eq!(view.find(a).unwrap().state, ProcState::Exited);
        assert_eq!(view.find(b).unwrap().state, ProcState::Running);
    }

    #[test]
    fn termination_shows_as_terminating() {
        let s = shared(2);
        let a = GlobalPid::new(NodeId(1), 1);
        s.register_app(a, ProcId::from_index(9));
        s.mark_terminated(a);
        let view = ClusterView::new(&s);
        assert_eq!(view.find(a).unwrap().state, ProcState::Terminating);
    }

    #[test]
    fn node_table_counts_virtual_cluster_kernels() {
        let s = shared(8); // 6 machines, nodes 6,7 co-located
        let view = ClusterView::new(&s);
        let nodes = view.nodes();
        assert_eq!(nodes.len(), 8);
        assert_eq!(nodes[0].kernels_on_machine, 2); // machine 0 hosts n0+n6
        assert_eq!(nodes[2].kernels_on_machine, 1);
        assert!(nodes.iter().all(|n| n.messages == 0 && n.gm_bytes == 0));
    }

    #[test]
    fn node_table_reflects_per_pe_traffic() {
        let s = shared(3);
        s.stats.update(NodeId(1), |ks| {
            ks.messages = 7;
            ks.gm_bytes_read = 100;
            ks.gm_bytes_written = 20;
            ks.gm_remote_reads = 4;
        });
        let view = ClusterView::new(&s);
        let nodes = view.nodes();
        assert_eq!(nodes[1].messages, 7);
        assert_eq!(nodes[1].gm_bytes, 120);
        assert_eq!(nodes[1].gm_remote_ops, 4);
        assert_eq!(nodes[0].messages, 0);
        let text = view.nodes_text();
        assert!(text.contains("GM-BYTES"));
        assert!(text.contains("120"));
    }

    #[test]
    fn machine_loads_track_running() {
        let s = shared(8);
        s.register_app(GlobalPid::new(NodeId(0), 1), ProcId::from_index(1));
        s.register_app(GlobalPid::new(NodeId(6), 1), ProcId::from_index(2));
        s.register_app(GlobalPid::new(NodeId(1), 1), ProcId::from_index(3));
        let view = ClusterView::new(&s);
        let loads = view.machine_loads();
        assert_eq!(loads[0], 2); // nodes 0 and 6 share machine 0
        assert_eq!(loads[1], 1);
        assert_eq!(loads[2], 0);
    }

    #[test]
    fn ps_text_renders_rows() {
        let s = shared(2);
        s.register_app(GlobalPid::new(NodeId(0), 1), ProcId::from_index(1));
        let view = ClusterView::new(&s);
        let text = view.ps_text();
        assert!(text.contains("PID"));
        assert!(text.contains("running"));
    }
}
