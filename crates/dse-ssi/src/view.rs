//! The single-system-image cluster view: one process table, one resource
//! picture, regardless of which node you ask from.

use dse_kernel::ClusterShared;
use dse_msg::{GlobalPid, NodeId};
use dse_obs::{ClusterAggregator, LogHistogram};

/// Lifecycle state of a DSE process in the cluster-wide table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Invoked and not yet finished.
    Running,
    /// Asked to terminate cooperatively, not yet finished.
    Terminating,
    /// Body returned.
    Exited,
}

/// One row of the cluster-wide `ps` listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessEntry {
    /// Cluster-wide pid (the SSI's flat id space).
    pub pid: GlobalPid,
    /// Node hosting the process.
    pub node: NodeId,
    /// Physical machine hosting that node.
    pub machine: usize,
    /// Lifecycle state.
    pub state: ProcState,
}

/// One row of the cluster-wide node listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// The node.
    pub node: NodeId,
    /// Physical machine hosting it.
    pub machine: usize,
    /// DSE kernels co-resident on that machine (1 on a real cluster, more
    /// on a virtual cluster).
    pub kernels_on_machine: usize,
    /// Application processes currently running on this node.
    pub running: usize,
    /// Runtime messages sent by this node's kernel+API so far.
    pub messages: u64,
    /// Global-memory traffic (bytes read + written) issued by this node.
    pub gm_bytes: u64,
    /// Remote GM operations (reads + writes) issued by this node — the
    /// share of its traffic that crossed node boundaries.
    pub gm_remote_ops: u64,
}

/// A read-only single-system-image view over a cluster.
///
/// ```
/// use dse_api::{DseProgram, Platform};
/// use dse_ssi::ClusterView;
/// use std::sync::Arc;
///
/// DseProgram::new(Platform::sunos_sparc()).run(3, |ctx| {
///     ctx.barrier(); // all ranks registered
///     let shared = Arc::clone(ctx.shared());
///     let view = ClusterView::new(&shared);
///     assert_eq!(view.ps().len(), 3); // one flat pid space
///     ctx.barrier();
/// });
/// ```
pub struct ClusterView<'a> {
    shared: &'a ClusterShared,
}

impl<'a> ClusterView<'a> {
    /// Build the view.
    pub fn new(shared: &'a ClusterShared) -> ClusterView<'a> {
        ClusterView { shared }
    }

    /// Cluster-wide process table (the SSI `ps`).
    pub fn ps(&self) -> Vec<ProcessEntry> {
        self.shared
            .all_apps()
            .into_iter()
            .map(|(pid, _)| {
                let state = if self.shared.is_exited(pid) {
                    ProcState::Exited
                } else if self.shared.is_terminated(pid) {
                    ProcState::Terminating
                } else {
                    ProcState::Running
                };
                ProcessEntry {
                    pid,
                    node: pid.node(),
                    machine: self.shared.machine_of(pid.node()),
                    state,
                }
            })
            .collect()
    }

    /// Find one process.
    pub fn find(&self, pid: GlobalPid) -> Option<ProcessEntry> {
        self.ps().into_iter().find(|e| e.pid == pid)
    }

    /// Cluster-wide node table.
    pub fn nodes(&self) -> Vec<NodeInfo> {
        let ps = self.ps();
        (0..self.shared.nnodes())
            .map(|n| {
                let node = NodeId(n as u16);
                let machine = self.shared.machine_of(node);
                let ks = self.shared.stats.snapshot_pe(n);
                NodeInfo {
                    node,
                    machine,
                    kernels_on_machine: self.shared.spec.kernels_on(machine),
                    running: ps
                        .iter()
                        .filter(|e| e.node == node && e.state == ProcState::Running)
                        .count(),
                    messages: ks.messages,
                    gm_bytes: ks.gm_bytes_read + ks.gm_bytes_written,
                    gm_remote_ops: ks.gm_remote_reads + ks.gm_remote_writes,
                }
            })
            .collect()
    }

    /// Running processes per physical machine (load picture for placement).
    pub fn machine_loads(&self) -> Vec<usize> {
        let ps = self.ps();
        (0..self.shared.spec.machines_used())
            .map(|m| {
                ps.iter()
                    .filter(|e| e.machine == m && e.state == ProcState::Running)
                    .count()
            })
            .collect()
    }

    /// Render the node table as text (the user-facing SSI load utility):
    /// one row per node with its placement and runtime traffic counters.
    pub fn nodes_text(&self) -> String {
        let mut out = String::from(
            "NODE  MACHINE  KERNELS  RUNNING  MSGS      GM-BYTES    REMOTE-OPS
",
        );
        for n in self.nodes() {
            out.push_str(&format!(
                "{:<5} {:<8} {:<8} {:<8} {:<9} {:<11} {}
",
                n.node.0,
                n.machine,
                n.kernels_on_machine,
                n.running,
                n.messages,
                n.gm_bytes,
                n.gm_remote_ops
            ));
        }
        out
    }

    /// Render the `ps` table as text (the user-facing SSI utility).
    pub fn ps_text(&self) -> String {
        let mut out = String::from("PID        NODE  MACHINE  STATE\n");
        for e in self.ps() {
            let state = match e.state {
                ProcState::Running => "running",
                ProcState::Terminating => "terminating",
                ProcState::Exited => "exited",
            };
            out.push_str(&format!(
                "{:<10} {:<5} {:<8} {}\n",
                e.pid.0, e.node.0, e.machine, state
            ));
        }
        out
    }
}

/// One row of the live cluster-top table, derived purely from the in-band
/// telemetry aggregated at PE0 (no direct access to any remote kernel's
/// registry — exactly what the aggregator heard over the bus).
#[derive(Debug, Clone, PartialEq)]
pub struct TopRow {
    /// The emitting PE (node).
    pub pe: u32,
    /// Physical machine tag carried on that PE's kernel counters, if any
    /// counter has been heard yet.
    pub machine: Option<u32>,
    /// Runtime messages sent by this node so far.
    pub messages: u64,
    /// Global-memory traffic (bytes read + written).
    pub gm_bytes: u64,
    /// GM cache hits on this node.
    pub cache_hits: u64,
    /// GM cache misses on this node.
    pub cache_misses: u64,
    /// Directory lookups served from a read replica at this home kernel.
    pub dir_hits: u64,
    /// Directory lookups that had to fetch from the home copy.
    pub dir_misses: u64,
    /// Invalidations applied on this node (wire-driven under WI, local
    /// purges under RC acquires).
    pub dir_invals: u64,
    /// High-water mark of split-phase GM requests this PE had in flight.
    pub gm_inflight: u64,
    /// GM operations coalesced into an already-staged request on this PE.
    pub gm_coalesced: u64,
    /// GM request retransmissions issued by this PE (live engine's
    /// failure-domain hardening; always 0 on a healthy wire).
    pub gm_retries: u64,
    /// GM requests abandoned after exhausting the retry budget.
    pub gm_deadline_trips: u64,
    /// p50 of remote GM request latency (read/write/fetch-add/batch
    /// merged), `None` until a remote request completed.
    pub p50_ns: Option<u64>,
    /// p99 of the same merged latency distribution.
    pub p99_ns: Option<u64>,
    /// p99.9 of the same merged latency distribution (the SLO tail).
    pub p999_ns: Option<u64>,
    /// Last telemetry sequence number heard from this PE.
    pub last_seq: u32,
    /// Sequence gaps observed (lost telemetry deltas).
    pub gaps: u64,
    /// Nanoseconds since the PE was last heard from; `None` before its
    /// first emission.
    pub age_ns: Option<u64>,
}

impl TopRow {
    /// GM cache hit rate in percent, `None` when no lookups happened yet.
    pub fn hit_pct(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.cache_hits as f64 * 100.0 / total as f64)
        }
    }

    /// Directory hit rate in percent, `None` when the coherence directory
    /// saw no lookups (cache off, or no remote reads yet).
    pub fn dir_hit_pct(&self) -> Option<f64> {
        let total = self.dir_hits + self.dir_misses;
        if total == 0 {
            None
        } else {
            Some(self.dir_hits as f64 * 100.0 / total as f64)
        }
    }
}

/// Build the live top table from a telemetry aggregator: one row per PE,
/// every column sourced from the aggregator's rollup and node-health
/// records. `now_ns` is the observer's clock (virtual or wall) used for
/// the staleness column.
pub fn top_rows(agg: &ClusterAggregator, now_ns: u64) -> Vec<TopRow> {
    let snap = agg.rollup();
    agg.nodes()
        .iter()
        .map(|ns| {
            let pe = ns.pe;
            let machine = snap
                .counters
                .iter()
                .find(|(k, _)| k.subsystem == "kernel" && k.pe == Some(pe) && k.machine.is_some())
                .and_then(|(k, _)| k.machine);
            let c = |name: &str| snap.counter("kernel", name, Some(pe)).unwrap_or(0);
            let mut lat = LogHistogram::new();
            for name in [
                "remote_read_ns",
                "remote_write_ns",
                "fetch_add_ns",
                "batch_ns",
            ] {
                if let Some(h) = snap.histogram("gm", name, Some(pe)) {
                    lat.merge(h);
                }
            }
            let (p50_ns, p99_ns, p999_ns) = if lat.count() > 0 {
                (Some(lat.p50()), Some(lat.p99()), Some(lat.p999()))
            } else {
                (None, None, None)
            };
            TopRow {
                pe,
                machine,
                messages: c("messages"),
                gm_bytes: c("gm_bytes_read") + c("gm_bytes_written"),
                cache_hits: c("cache_hits"),
                cache_misses: c("cache_misses"),
                dir_hits: c("dir_hits"),
                dir_misses: c("dir_misses"),
                dir_invals: c("dir_invals"),
                gm_inflight: snap.gauge("kernel", "gm_inflight", Some(pe)).unwrap_or(0),
                gm_coalesced: c("gm_coalesced"),
                gm_retries: c("gm_retries"),
                gm_deadline_trips: c("gm_deadline_trips"),
                p50_ns,
                p99_ns,
                p999_ns,
                last_seq: ns.last_seq,
                gaps: ns.gaps,
                age_ns: ns.last_heard_ns.map(|t| now_ns.saturating_sub(t)),
            }
        })
        .collect()
}

fn fmt_us(v: Option<u64>) -> String {
    match v {
        Some(ns) => format!("{:.1}", ns as f64 / 1e3),
        None => "-".to_string(),
    }
}

/// Render the live top table as text (the `dse-top` view behind
/// `dse-run --watch`): one row per PE with traffic, GM cache hit rate,
/// request-latency percentiles and telemetry health.
pub fn render_top(agg: &ClusterAggregator, now_ns: u64) -> String {
    let mut out = String::from(
        "NODE  MACHINE  MSGS      GM-BYTES    HIT%   DIR%   INVAL  INFLT  COAL   RETRY  TRIPS  P50(us)   P99(us)   P999(us)  SEQ    GAPS  AGE(ms)\n",
    );
    for r in top_rows(agg, now_ns) {
        let machine = r
            .machine
            .map(|m| m.to_string())
            .unwrap_or_else(|| "-".to_string());
        let hit = r
            .hit_pct()
            .map(|p| format!("{p:.1}"))
            .unwrap_or_else(|| "-".to_string());
        let dir = r
            .dir_hit_pct()
            .map(|p| format!("{p:.1}"))
            .unwrap_or_else(|| "-".to_string());
        let age = r
            .age_ns
            .map(|a| format!("{:.1}", a as f64 / 1e6))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{:<5} {:<8} {:<9} {:<11} {:<6} {:<6} {:<6} {:<6} {:<6} {:<6} {:<6} {:<9} {:<9} {:<9} {:<6} {:<5} {}\n",
            r.pe,
            machine,
            r.messages,
            r.gm_bytes,
            hit,
            dir,
            r.dir_invals,
            r.gm_inflight,
            r.gm_coalesced,
            r.gm_retries,
            r.gm_deadline_trips,
            fmt_us(r.p50_ns),
            fmt_us(r.p99_ns),
            fmt_us(r.p999_ns),
            r.last_seq,
            r.gaps,
            age
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_kernel::DseConfig;
    use dse_platform::{ClusterSpec, Platform};
    use dse_sim::{ProcId, ResourceId};

    fn shared(p: usize) -> ClusterShared {
        let spec = ClusterSpec::paper(Platform::sunos_sparc(), p);
        let cpus = (0..spec.machines_used())
            .map(ResourceId::from_index)
            .collect();
        ClusterShared::new(spec, DseConfig::default(), cpus)
    }

    #[test]
    fn ps_reflects_registration_and_exit() {
        let s = shared(3);
        let a = GlobalPid::new(NodeId(0), 1);
        let b = GlobalPid::new(NodeId(2), 1);
        s.register_app(a, ProcId::from_index(10));
        s.register_app(b, ProcId::from_index(11));
        let view = ClusterView::new(&s);
        let ps = view.ps();
        assert_eq!(ps.len(), 2);
        assert!(ps.iter().all(|e| e.state == ProcState::Running));
        s.mark_exited(a);
        assert_eq!(view.find(a).unwrap().state, ProcState::Exited);
        assert_eq!(view.find(b).unwrap().state, ProcState::Running);
    }

    #[test]
    fn termination_shows_as_terminating() {
        let s = shared(2);
        let a = GlobalPid::new(NodeId(1), 1);
        s.register_app(a, ProcId::from_index(9));
        s.mark_terminated(a);
        let view = ClusterView::new(&s);
        assert_eq!(view.find(a).unwrap().state, ProcState::Terminating);
    }

    #[test]
    fn node_table_counts_virtual_cluster_kernels() {
        let s = shared(8); // 6 machines, nodes 6,7 co-located
        let view = ClusterView::new(&s);
        let nodes = view.nodes();
        assert_eq!(nodes.len(), 8);
        assert_eq!(nodes[0].kernels_on_machine, 2); // machine 0 hosts n0+n6
        assert_eq!(nodes[2].kernels_on_machine, 1);
        assert!(nodes.iter().all(|n| n.messages == 0 && n.gm_bytes == 0));
    }

    #[test]
    fn node_table_reflects_per_pe_traffic() {
        let s = shared(3);
        s.stats.update(NodeId(1), |ks| {
            ks.messages = 7;
            ks.gm_bytes_read = 100;
            ks.gm_bytes_written = 20;
            ks.gm_remote_reads = 4;
        });
        let view = ClusterView::new(&s);
        let nodes = view.nodes();
        assert_eq!(nodes[1].messages, 7);
        assert_eq!(nodes[1].gm_bytes, 120);
        assert_eq!(nodes[1].gm_remote_ops, 4);
        assert_eq!(nodes[0].messages, 0);
        let text = view.nodes_text();
        assert!(text.contains("GM-BYTES"));
        assert!(text.contains("120"));
    }

    #[test]
    fn machine_loads_track_running() {
        let s = shared(8);
        s.register_app(GlobalPid::new(NodeId(0), 1), ProcId::from_index(1));
        s.register_app(GlobalPid::new(NodeId(6), 1), ProcId::from_index(2));
        s.register_app(GlobalPid::new(NodeId(1), 1), ProcId::from_index(3));
        let view = ClusterView::new(&s);
        let loads = view.machine_loads();
        assert_eq!(loads[0], 2); // nodes 0 and 6 share machine 0
        assert_eq!(loads[1], 1);
        assert_eq!(loads[2], 0);
    }

    #[test]
    fn ps_text_renders_rows() {
        let s = shared(2);
        s.register_app(GlobalPid::new(NodeId(0), 1), ProcId::from_index(1));
        let view = ClusterView::new(&s);
        let text = view.ps_text();
        assert!(text.contains("PID"));
        assert!(text.contains("running"));
    }

    use dse_obs::{DeltaTracker, MetricKey, Registry};

    /// Feed an aggregator exactly the way the kernels do: per-PE registries
    /// sampled through per-PE delta trackers.
    fn aggregated() -> ClusterAggregator {
        let mut agg = ClusterAggregator::new(2);
        let reg0 = Registry::new();
        reg0.add(MetricKey::pe("kernel", "messages", 0).on_machine(0), 12);
        reg0.add(
            MetricKey::pe("kernel", "gm_bytes_read", 0).on_machine(0),
            96,
        );
        reg0.add(
            MetricKey::pe("kernel", "gm_bytes_written", 0).on_machine(0),
            32,
        );
        reg0.add(MetricKey::pe("kernel", "cache_hits", 0).on_machine(0), 3);
        reg0.add(MetricKey::pe("kernel", "cache_misses", 0).on_machine(0), 1);
        reg0.add(MetricKey::pe("kernel", "dir_hits", 0).on_machine(0), 9);
        reg0.add(MetricKey::pe("kernel", "dir_misses", 0).on_machine(0), 1);
        reg0.add(MetricKey::pe("kernel", "dir_invals", 0).on_machine(0), 6);
        reg0.add(MetricKey::pe("kernel", "gm_coalesced", 0).on_machine(0), 7);
        reg0.add(MetricKey::pe("kernel", "gm_retries", 0).on_machine(0), 2);
        reg0.add(
            MetricKey::pe("kernel", "gm_deadline_trips", 0).on_machine(0),
            1,
        );
        reg0.gauge_max(MetricKey::pe("kernel", "gm_inflight", 0).on_machine(0), 4);
        reg0.record(MetricKey::pe("gm", "remote_read_ns", 0), 10_000);
        reg0.record(MetricKey::pe("gm", "remote_write_ns", 0), 30_000);
        reg0.record(MetricKey::pe("gm", "batch_ns", 0), 50_000);
        let mut t0 = DeltaTracker::new(0, true);
        let (seq, d) = t0.delta(&reg0.snapshot(), &[], true).unwrap();
        agg.apply(0, seq, 1_000_000, &d);

        let reg1 = Registry::new();
        reg1.add(MetricKey::pe("kernel", "messages", 1).on_machine(1), 5);
        let mut t1 = DeltaTracker::new(1, false);
        let (seq, d) = t1.delta(&reg1.snapshot(), &[], true).unwrap();
        agg.apply(1, seq, 4_000_000, &d);
        agg
    }

    #[test]
    fn top_rows_source_from_aggregator_only() {
        let agg = aggregated();
        let rows = top_rows(&agg, 5_000_000);
        assert_eq!(rows.len(), 2);
        let r0 = &rows[0];
        assert_eq!(r0.pe, 0);
        assert_eq!(r0.machine, Some(0));
        assert_eq!(r0.messages, 12);
        assert_eq!(r0.gm_bytes, 128);
        assert_eq!(r0.hit_pct(), Some(75.0));
        assert_eq!(r0.dir_hit_pct(), Some(90.0));
        assert_eq!(r0.dir_invals, 6);
        assert_eq!(r0.gm_inflight, 4);
        assert_eq!(r0.gm_coalesced, 7);
        assert_eq!(r0.gm_retries, 2);
        assert_eq!(r0.gm_deadline_trips, 1);
        // Merged latency distribution spans all recorded samples (plain
        // reads/writes and split-phase batches alike).
        assert!(r0.p50_ns.is_some() && r0.p99_ns.is_some() && r0.p999_ns.is_some());
        assert!(r0.p99_ns.unwrap() >= r0.p50_ns.unwrap());
        assert!(r0.p999_ns.unwrap() >= r0.p99_ns.unwrap());
        assert!(r0.p99_ns.unwrap() >= 50_000);
        assert_eq!(r0.age_ns, Some(4_000_000));
        let r1 = &rows[1];
        assert_eq!(r1.machine, Some(1));
        assert_eq!(r1.messages, 5);
        assert_eq!(r1.hit_pct(), None);
        assert_eq!(r1.dir_hit_pct(), None);
        assert_eq!(r1.dir_invals, 0);
        assert_eq!(r1.gm_inflight, 0);
        assert_eq!(r1.gm_coalesced, 0);
        assert_eq!(r1.gm_retries, 0);
        assert_eq!(r1.gm_deadline_trips, 0);
        assert_eq!(r1.p50_ns, None);
        assert_eq!(r1.p999_ns, None);
        assert_eq!(r1.age_ns, Some(1_000_000));
        assert!(rows.iter().all(|r| r.last_seq == 1 && r.gaps == 0));
    }

    #[test]
    fn top_rows_before_first_emission_are_blank() {
        let agg = ClusterAggregator::new(3);
        let rows = top_rows(&agg, 1_000);
        assert_eq!(rows.len(), 3);
        assert!(rows
            .iter()
            .all(|r| r.age_ns.is_none() && r.machine.is_none() && r.messages == 0));
    }

    #[test]
    fn render_top_formats_table() {
        let agg = aggregated();
        let text = render_top(&agg, 5_000_000);
        assert!(text.starts_with("NODE"));
        assert!(text.contains("P999(us)"));
        assert!(text.contains("HIT%"));
        assert!(text.contains("DIR%"));
        assert!(text.contains("INVAL"));
        assert!(text.contains("90.0"));
        assert!(text.contains("INFLT"));
        assert!(text.contains("COAL"));
        assert!(text.contains("RETRY"));
        assert!(text.contains("TRIPS"));
        assert!(text.contains("75.0"));
        assert!(text.contains("128"));
        // PE1 never saw a GM request: latency renders as "-".
        let line1 = text.lines().nth(2).unwrap();
        assert!(line1.contains('-'));
        assert_eq!(text.lines().count(), 3);
    }
}
