//! Cluster-wide name service: symbolic names for global-memory regions.
//!
//! Part of the "unified access to resources" that a single-system image
//! promises: a process on any node can bind a name to a region and any
//! other process can resolve it, without knowing where the data lives.

use dse_api::{DseCtx, GmArray, GmElem};
use dse_msg::RegionId;

/// Bind `name` to a region from within a parallel program. Returns `false`
/// if the name was already bound (first binding wins; bindings are
/// immutable for the life of the run).
pub fn bind(ctx: &mut DseCtx<'_>, name: &str, region: RegionId) -> bool {
    ctx.shared().bind_name(name, region)
}

/// Resolve `name` to a region id, if bound.
pub fn lookup(ctx: &mut DseCtx<'_>, name: &str) -> Option<RegionId> {
    ctx.shared().lookup_name(name)
}

/// Bind a typed array under a name (stores its region; the element count
/// travels in an adjacent `<name>.len` binding-free convention — arrays
/// resolved by name must have a length known to the resolver).
pub fn bind_array<T: GmElem>(ctx: &mut DseCtx<'_>, name: &str, arr: &GmArray<T>) -> bool {
    bind(ctx, name, arr.region())
}

#[cfg(test)]
mod tests {
    use dse_api::{Distribution, DseProgram, GmArray, NodeId, Platform};

    #[test]
    fn names_resolve_across_ranks() {
        DseProgram::new(Platform::linux_pentium2()).run(3, |ctx| {
            if ctx.rank() == 0 {
                // Allocation by a single rank is fine: the "collective"
                // table only requires agreement among ranks that do call.
                let arr = GmArray::<f64>::alloc(ctx, 1, Distribution::OnNode(NodeId(0)));
                assert!(super::bind_array(ctx, "answer", &arr));
                arr.set(ctx, 0, 42.0);
            }
            ctx.barrier();
            let region = super::lookup(ctx, "answer").expect("name bound");
            // Read the value through the raw region interface.
            let bytes = ctx.gm_read(region, 0, 8);
            assert_eq!(f64::from_le_bytes(bytes.try_into().unwrap()), 42.0);
            assert!(super::lookup(ctx, "missing").is_none());
        });
    }

    #[test]
    fn first_binding_wins() {
        DseProgram::new(Platform::sunos_sparc()).run(2, |ctx| {
            let arr = GmArray::<u8>::alloc(ctx, 4, Distribution::Blocked);
            let won = super::bind(ctx, "shared-name", arr.region());
            ctx.barrier();
            // Exactly one rank observed `true`… but both bound the same
            // region (collective alloc), so re-binding returns false.
            let again = super::bind(ctx, "shared-name", arr.region());
            assert!(!again);
            let _ = won;
        });
    }
}
