//! Transparent process placement policies.
//!
//! One SSI promise is that users need not know where work runs: the system
//! picks a node. These policies choose a machine given the current load
//! picture (as produced by [`crate::ClusterView::machine_loads`]).

/// A placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Cycle through machines regardless of load (the paper's Table 2
    /// virtual-cluster rule is exactly this).
    RoundRobin,
    /// Pick the machine with the fewest running processes (ties: lowest
    /// index, for determinism).
    LeastLoaded,
    /// Fill one machine before moving to the next (cache/locality bias).
    Packed,
}

/// Stateful placer applying a policy over successive placements.
#[derive(Debug, Clone)]
pub struct Placer {
    policy: PlacementPolicy,
    next_rr: usize,
}

impl Placer {
    /// A placer with the given policy.
    pub fn new(policy: PlacementPolicy) -> Placer {
        Placer { policy, next_rr: 0 }
    }

    /// Choose a machine for the next process given current `loads`
    /// (running-process count per machine). Panics on an empty cluster.
    pub fn choose(&mut self, loads: &[usize]) -> usize {
        assert!(!loads.is_empty(), "no machines to place on");
        match self.policy {
            PlacementPolicy::RoundRobin => {
                let m = self.next_rr % loads.len();
                self.next_rr += 1;
                m
            }
            PlacementPolicy::LeastLoaded => {
                let mut best = 0;
                for (m, &l) in loads.iter().enumerate() {
                    if l < loads[best] {
                        best = m;
                    }
                }
                best
            }
            PlacementPolicy::Packed => {
                // First machine that is the current maximum but still the
                // earliest; i.e. keep adding to the lowest-index machine.
                0
            }
        }
    }

    /// Place `count` processes starting from the given loads; returns the
    /// chosen machine per process.
    pub fn place_all(&mut self, mut loads: Vec<usize>, count: usize) -> Vec<usize> {
        (0..count)
            .map(|_| {
                let m = self.choose(&loads);
                loads[m] += 1;
                m
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut p = Placer::new(PlacementPolicy::RoundRobin);
        let picks = p.place_all(vec![0; 3], 7);
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn round_robin_matches_paper_virtual_cluster() {
        // 8 processes on 6 machines = the paper's Table 2 placement.
        let mut p = Placer::new(PlacementPolicy::RoundRobin);
        let picks = p.place_all(vec![0; 6], 8);
        assert_eq!(picks, vec![0, 1, 2, 3, 4, 5, 0, 1]);
    }

    #[test]
    fn least_loaded_balances() {
        let mut p = Placer::new(PlacementPolicy::LeastLoaded);
        let picks = p.place_all(vec![2, 0, 1], 3);
        assert_eq!(picks, vec![1, 1, 2]); // 1 (load 0), 1 again (ties at 1 → index 1), then 2
    }

    #[test]
    fn least_loaded_deterministic_on_ties() {
        let mut p = Placer::new(PlacementPolicy::LeastLoaded);
        assert_eq!(p.choose(&[1, 1, 1]), 0);
    }

    #[test]
    fn packed_fills_first() {
        let mut p = Placer::new(PlacementPolicy::Packed);
        let picks = p.place_all(vec![0; 4], 3);
        assert_eq!(picks, vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "no machines")]
    fn empty_cluster_panics() {
        let mut p = Placer::new(PlacementPolicy::RoundRobin);
        let _ = p.choose(&[]);
    }
}
