//! # dse-ssi — single-system-image services
//!
//! The paper's research goal is a cluster that *looks like one system*.
//! This crate layers the user-visible SSI services over the DSE runtime:
//!
//! * [`ClusterView`] — one cluster-wide process table (`ps`), node table
//!   and load picture, identical from every node;
//! * [`names`] — a cluster-wide name service binding symbolic names to
//!   global-memory regions ("unified access to resources");
//! * [`Placer`]/[`PlacementPolicy`] — transparent process placement
//!   (round-robin reproduces the paper's Table 2 virtual-cluster rule;
//!   least-loaded and packed are the obvious alternatives);
//! * [`top_rows`]/[`render_top`] — the live `dse-top` cluster view fed by
//!   the in-band telemetry aggregated at PE0 (traffic, GM cache hit rate,
//!   request-latency percentiles, per-node telemetry health).

#![warn(missing_docs)]

pub mod names;
mod placement;
mod view;

pub use placement::{PlacementPolicy, Placer};
pub use view::{render_top, top_rows, ClusterView, NodeInfo, ProcState, ProcessEntry, TopRow};
