//! Cross-PE trace assembly: merge per-PE causal span streams into one
//! cluster-wide trace.
//!
//! Each PE of a live run writes the spans its two threads recorded
//! (`dse_obs::TraceRecorder`) as one JSONL stream. Alone, a stream only
//! shows what *that* PE did; the causality lives in the ids that crossed
//! the wire in the frame trace-context extension. [`assemble`] merges the
//! streams, indexes the id graph, and measures how well the run linked up
//! ([`LinkStats`]); the blame/critical-path analyses and the Chrome flow
//! export all work on the assembled [`ClusterTrace`].
//!
//! The assembled span order is a deterministic function of the span set
//! (sort by `(trace, start, end, pe, span)`), never of arrival order, so
//! identical runs assemble to identical traces. For byte-level diffing
//! across *re-executions* — where wall-clock timestamps and response
//! arrival order differ — [`ClusterTrace::canonical`] strips the
//! nondeterminism: timestamps collapse to unit durations, replayed serves
//! and retry spans drop out, and every span id is renumbered in canonical
//! order (redeem-span ids mint in response-arrival order, so raw ids
//! differ run to run even when the span set does not).

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use dse_obs::{derived_span_id, parse_trace_jsonl, TraceSpanKind, TraceSpanRec};

/// File name of PE `pe`'s stream inside a trace directory.
pub fn trace_file_name(pe: u32) -> String {
    format!("pe{pe}.trace.jsonl")
}

/// Write one stream per PE into `dir` (created if missing).
pub fn write_trace_dir(dir: &Path, per_pe: &[Vec<TraceSpanRec>]) -> Result<(), String> {
    fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    for (pe, spans) in per_pe.iter().enumerate() {
        let mut out = String::new();
        for s in spans {
            s.write_jsonl(&mut out);
        }
        let path = dir.join(trace_file_name(pe as u32));
        fs::write(&path, out).map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(())
}

/// Load every `pe*.trace.jsonl` stream from `dir`, indexed by PE.
pub fn load_trace_dir(dir: &Path) -> Result<Vec<Vec<TraceSpanRec>>, String> {
    let mut streams: Vec<(u32, Vec<TraceSpanRec>)> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(pe) = name
            .strip_prefix("pe")
            .and_then(|r| r.strip_suffix(".trace.jsonl"))
            .and_then(|n| n.parse::<u32>().ok())
        else {
            continue;
        };
        let text = fs::read_to_string(entry.path())
            .map_err(|e| format!("read {}: {e}", entry.path().display()))?;
        let spans = parse_trace_jsonl(&text).map_err(|e| format!("{name}: {e}"))?;
        streams.push((pe, spans));
    }
    if streams.is_empty() {
        return Err(format!("no pe*.trace.jsonl streams in {}", dir.display()));
    }
    streams.sort_by_key(|(pe, _)| *pe);
    let nprocs = streams.last().unwrap().0 as usize + 1;
    let mut per_pe = vec![Vec::new(); nprocs];
    for (pe, spans) in streams {
        per_pe[pe as usize] = spans;
    }
    Ok(per_pe)
}

/// How completely the causal graph linked up, per [`assemble`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// GM request spans in the trace.
    pub gm_reqs: usize,
    /// Requests whose full requester → home serve → requester redeem
    /// chain is present.
    pub gm_linked: usize,
    /// Barrier wait spans with a matching release span.
    pub barrier_linked: usize,
    /// Barrier wait spans total.
    pub barrier_waits: usize,
    /// Lock wait spans with a matching grant span.
    pub lock_linked: usize,
    /// Lock wait spans total.
    pub lock_waits: usize,
}

impl LinkStats {
    /// Linked fraction of GM request chains (1.0 when there were none).
    pub fn gm_link_ratio(&self) -> f64 {
        if self.gm_reqs == 0 {
            1.0
        } else {
            self.gm_linked as f64 / self.gm_reqs as f64
        }
    }
}

/// The assembled cluster-wide causal trace.
#[derive(Debug, Clone)]
pub struct ClusterTrace {
    /// Every span of the run, in deterministic assembled order.
    pub spans: Vec<TraceSpanRec>,
    /// PEs covered (`max pe + 1`).
    pub nprocs: usize,
    /// Cross-PE linkage coverage.
    pub links: LinkStats,
}

impl ClusterTrace {
    /// Root app span of PE `pe`, if the stream recorded one.
    pub fn app_span(&self, pe: u32) -> Option<&TraceSpanRec> {
        self.spans
            .iter()
            .find(|s| s.kind == TraceSpanKind::App && s.pe == pe)
    }

    /// Render the assembled trace as one JSONL stream.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            s.write_jsonl(&mut out);
        }
        out
    }

    /// The canonical form of this trace: a deterministic function of the
    /// causal *structure*, byte-identical across re-executions of the
    /// same program.
    ///
    /// * replayed serves (`dedup`) and retry-backoff spans are dropped —
    ///   whether a retransmit happened is timing, not structure;
    /// * `retries` counters reset for the same reason;
    /// * each barrier release re-parents onto its highest-rank waiter
    ///   (the raw parent is whichever enter arrived last);
    /// * timestamps collapse to `0..1`;
    /// * span ids are renumbered `1..n` in canonical sort order and every
    ///   `trace`/`parent` reference is remapped (a reference to a dropped
    ///   span becomes 0).
    pub fn canonical(&self) -> ClusterTrace {
        let mut spans: Vec<TraceSpanRec> = self
            .spans
            .iter()
            .filter(|s| !s.dedup && s.kind != TraceSpanKind::RetryBackoff)
            .copied()
            .collect();
        // Highest-rank waiter per barrier: a release's raw trace/parent/
        // peer all name whichever enter arrived last, which is timing.
        let mut wait_of: HashMap<u64, (u64, u64, u32)> = HashMap::new();
        for s in &spans {
            if s.kind == TraceSpanKind::BarrierWait {
                let e = wait_of.entry(s.seq).or_insert((s.span, s.trace, s.pe));
                if s.pe >= e.2 {
                    *e = (s.span, s.trace, s.pe);
                }
            }
        }
        for s in spans.iter_mut() {
            s.retries = 0;
            if s.kind == TraceSpanKind::BarrierRelease {
                if let Some((span, trace, pe)) = wait_of.get(&s.seq) {
                    s.parent = *span;
                    s.trace = *trace;
                    s.peer = *pe;
                }
            }
        }
        spans.sort_by_key(canonical_key);
        let renumber: HashMap<u64, u64> = spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.span, i as u64 + 1))
            .collect();
        let remap = |id: u64| renumber.get(&id).copied().unwrap_or(0);
        for s in spans.iter_mut() {
            s.span = remap(s.span);
            s.parent = remap(s.parent);
            s.trace = remap(s.trace);
            s.start_ns = 0;
            s.end_ns = 1;
        }
        let links = link_stats(&spans);
        ClusterTrace {
            spans,
            nprocs: self.nprocs,
            links,
        }
    }
}

/// Run-independent sort key: never timestamps, never raw span ids except
/// as a final tie-break within one PE's deterministic program order.
fn canonical_key(s: &TraceSpanRec) -> (u32, usize, u64, u32, u64) {
    let kind_idx = TraceSpanKind::ALL
        .iter()
        .position(|k| *k == s.kind)
        .unwrap_or(usize::MAX);
    // `span` as the last component: within one (pe, kind, seq, peer)
    // cell only same-thread mints can collide (e.g. fence gm_block spans,
    // all seq 0), and those mint in program order — deterministic.
    (s.pe, kind_idx, s.seq, s.peer, s.span)
}

fn link_stats(spans: &[TraceSpanRec]) -> LinkStats {
    let mut st = LinkStats::default();
    let mut serve_ids: HashMap<u64, ()> = HashMap::new();
    let mut redeem_parents: HashMap<u64, ()> = HashMap::new();
    let mut release_seqs: HashMap<u64, ()> = HashMap::new();
    let mut grant_seqs: HashMap<u64, ()> = HashMap::new();
    for s in spans {
        match s.kind {
            TraceSpanKind::Serve => {
                serve_ids.insert(s.span, ());
            }
            TraceSpanKind::Redeem => {
                redeem_parents.insert(s.parent, ());
            }
            TraceSpanKind::BarrierRelease => {
                release_seqs.insert(s.seq, ());
            }
            TraceSpanKind::LockGrant => {
                grant_seqs.insert(s.seq, ());
            }
            _ => {}
        }
    }
    for s in spans {
        match s.kind {
            TraceSpanKind::GmReq => {
                st.gm_reqs += 1;
                // The serve id is derivable on this side too. The redeem
                // may have linked to a dedup replay of the serve rather
                // than the fresh one, so probe the first few indices.
                let linked = (0..4u32).any(|r| {
                    let id = derived_serve_id(s.span, r);
                    serve_ids.contains_key(&id) && redeem_parents.contains_key(&id)
                });
                st.gm_linked += linked as usize;
            }
            TraceSpanKind::BarrierWait => {
                st.barrier_waits += 1;
                st.barrier_linked += release_seqs.contains_key(&s.seq) as usize;
            }
            TraceSpanKind::LockWait => {
                st.lock_waits += 1;
                st.lock_linked += grant_seqs.contains_key(&s.seq) as usize;
            }
            _ => {}
        }
    }
    st
}

/// The serve-span id the home kernel derives for replay index `replay` of
/// the request rooted at `req_span` (mirrors the engine's derivation).
pub fn derived_serve_id(req_span: u64, replay: u32) -> u64 {
    derived_span_id(req_span, 1 | ((replay as u64) << 8))
}

/// Merge per-PE span streams into one [`ClusterTrace`].
///
/// Sort order is `(trace, start_ns, end_ns, pe, span)`: causally related
/// spans group by trace and read chronologically within it, and the order
/// is a pure function of the span set.
pub fn assemble(per_pe: &[Vec<TraceSpanRec>]) -> ClusterTrace {
    let mut spans: Vec<TraceSpanRec> = per_pe.iter().flatten().copied().collect();
    spans.sort_by_key(|s| (s.trace, s.start_ns, s.end_ns, s.pe, s.span));
    let nprocs = per_pe
        .len()
        .max(spans.iter().map(|s| s.pe as usize + 1).max().unwrap_or(0));
    let links = link_stats(&spans);
    ClusterTrace {
        spans,
        nprocs,
        links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: TraceSpanKind, trace: u64, id: u64, parent: u64, pe: u32) -> TraceSpanRec {
        TraceSpanRec::new(kind, trace, id, parent, pe, 10, 20)
    }

    fn linked_chain() -> Vec<Vec<TraceSpanRec>> {
        // PE0 requests from PE1: app -> gm_req -> serve(1) -> redeem(0).
        let app = span(TraceSpanKind::App, 100, 100, 0, 0);
        let mut req = span(TraceSpanKind::GmReq, 100, 101, 100, 0);
        req.seq = 7;
        let sid = derived_serve_id(101, 0);
        let mut serve = span(TraceSpanKind::Serve, 100, sid, 101, 1);
        serve.peer = 0;
        let mut redeem = span(TraceSpanKind::Redeem, 100, 102, sid, 0);
        redeem.seq = 7;
        vec![vec![app, req, redeem], vec![serve]]
    }

    #[test]
    fn assemble_links_full_gm_chains() {
        let t = assemble(&linked_chain());
        assert_eq!(t.nprocs, 2);
        assert_eq!(t.links.gm_reqs, 1);
        assert_eq!(t.links.gm_linked, 1);
        assert_eq!(t.links.gm_link_ratio(), 1.0);
        // Breaking the chain (no redeem) must show up as unlinked.
        let mut broken = linked_chain();
        broken[0].retain(|s| s.kind != TraceSpanKind::Redeem);
        let t = assemble(&broken);
        assert_eq!(t.links.gm_linked, 0);
    }

    #[test]
    fn trace_dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dse-trace-rt-{}", std::process::id()));
        let per_pe = linked_chain();
        write_trace_dir(&dir, &per_pe).unwrap();
        let back = load_trace_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(back.len(), 2);
        assert_eq!(assemble(&back).to_jsonl(), assemble(&per_pe).to_jsonl());
    }

    #[test]
    fn canonical_is_invariant_to_ids_timing_and_replays() {
        // Same causal structure, different raw ids / timestamps / replay
        // noise must canonicalize to identical bytes.
        let a = assemble(&linked_chain());
        let mut shifted = linked_chain();
        for stream in shifted.iter_mut() {
            for s in stream.iter_mut() {
                s.start_ns += 5_000;
                s.end_ns += 7_000;
            }
        }
        // A dedup replay and a retry span: timing artifacts, dropped.
        let mut replay = span(TraceSpanKind::Serve, 100, derived_serve_id(101, 1), 101, 1);
        replay.dedup = true;
        replay.peer = 0;
        shifted[1].push(replay);
        let mut retry = span(TraceSpanKind::RetryBackoff, 100, 103, 101, 0);
        retry.seq = 7;
        shifted[0].push(retry);
        let b = assemble(&shifted);
        assert_eq!(a.canonical().to_jsonl(), b.canonical().to_jsonl());
        // Canonical output is normalized: ids small, times unit.
        let c = a.canonical();
        assert!(c.spans.iter().all(|s| s.span <= c.spans.len() as u64));
        assert!(c.spans.iter().all(|s| s.start_ns == 0 && s.end_ns == 1));
    }

    #[test]
    fn canonical_reparents_barrier_release_to_highest_rank_waiter() {
        let mut w0 = span(TraceSpanKind::BarrierWait, 100, 100, 1, 0);
        w0.seq = 9;
        let mut w1 = span(TraceSpanKind::BarrierWait, 200, 200, 2, 1);
        w1.seq = 9;
        // Raw parent points at PE0's wait (PE0 arrived last this run).
        let mut rel = span(TraceSpanKind::BarrierRelease, 100, 300, 100, 0);
        rel.seq = 9;
        let a = assemble(&[vec![w0, rel], vec![w1]]);
        let c = a.canonical();
        let rel_c = c
            .spans
            .iter()
            .find(|s| s.kind == TraceSpanKind::BarrierRelease)
            .unwrap();
        let w1_c = c
            .spans
            .iter()
            .find(|s| s.kind == TraceSpanKind::BarrierWait && s.pe == 1)
            .unwrap();
        assert_eq!(rel_c.parent, w1_c.span, "release re-homed onto PE1's wait");
    }
}
