//! Per-process time breakdowns from an execution trace.
//!
//! Classifies every simulated process's lifetime into: **compute** (holding
//! a CPU or other resource), **CPU queueing** (waiting behind co-resident
//! holders — the virtual-cluster overload), **communication wait** (blocked
//! in `recv` — request round trips, barrier waits), **sleep**, and
//! **other** (unaccounted scheduling gaps). These are exactly the
//! quantities the paper argues with: "communication frequency",
//! "machine load increases in proportion", "computation granularity".

use dse_sim::{ProcId, SimDuration, SimTime, TraceKind, TraceRecords};

/// Where one process's virtual time went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcBreakdown {
    /// The process.
    pub proc: ProcId,
    /// Its name.
    pub name: String,
    /// First scheduling.
    pub start: SimTime,
    /// Exit time (or the run's end for server loops).
    pub end: SimTime,
    /// Time holding resources (computing / servicing).
    pub compute: SimDuration,
    /// Time queued for resources (CPU contention).
    pub cpu_wait: SimDuration,
    /// Time blocked in `recv` (communication / synchronization wait).
    pub recv_wait: SimDuration,
    /// Time in pure sleeps.
    pub sleep: SimDuration,
    /// Messages sent.
    pub sends: u64,
}

impl ProcBreakdown {
    /// Total lifetime.
    pub fn span(&self) -> SimDuration {
        self.end - self.start
    }

    /// Lifetime not covered by the other categories.
    pub fn other(&self) -> SimDuration {
        self.span() - self.compute - self.cpu_wait - self.recv_wait - self.sleep
    }

    /// Fraction of the lifetime spent in a category (0..1).
    pub fn frac(&self, of: SimDuration) -> f64 {
        let span = self.span().as_nanos();
        if span == 0 {
            return 0.0;
        }
        of.as_nanos() as f64 / span as f64
    }
}

/// The analysis of one run's trace.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Per-process breakdowns, in process order.
    pub procs: Vec<ProcBreakdown>,
    /// The run's end time.
    pub end_time: SimTime,
}

/// Build per-process breakdowns from a recorded trace.
///
/// ```
/// use dse_sim::{SimDuration, Simulator};
/// use dse_trace::analyze;
///
/// let mut sim: Simulator<()> = Simulator::new();
/// sim.enable_tracing();
/// let cpu = sim.add_resource("cpu");
/// sim.spawn("worker", move |ctx| {
///     ctx.use_resource(cpu, SimDuration::from_millis(10));
/// });
/// let report = sim.run();
/// let analysis = analyze(report.trace.as_ref().unwrap(), report.end_time);
/// let worker = &analysis.procs[0];
/// assert_eq!(worker.compute, SimDuration::from_millis(10));
/// ```
pub fn analyze(trace: &TraceRecords, end_time: SimTime) -> TraceAnalysis {
    let n = trace.proc_names.len();
    let mut procs: Vec<ProcBreakdown> = (0..n)
        .map(|i| ProcBreakdown {
            proc: ProcId::from_index(i),
            name: trace.proc_names[i].clone(),
            start: SimTime::ZERO,
            end: end_time,
            compute: SimDuration::ZERO,
            cpu_wait: SimDuration::ZERO,
            recv_wait: SimDuration::ZERO,
            sleep: SimDuration::ZERO,
            sends: 0,
        })
        .collect();
    for ev in &trace.events {
        let b = &mut procs[ev.proc.index()];
        match ev.kind {
            TraceKind::Start { at } => b.start = at,
            TraceKind::Exit { at } => b.end = at,
            TraceKind::ResourceHold { from, until, .. } => b.compute += until - from,
            TraceKind::ResourceWait { from, until, .. } => b.cpu_wait += until - from,
            TraceKind::RecvWait { from, until } => b.recv_wait += until - from,
            TraceKind::Sleep { from, until } => b.sleep += until - from,
            TraceKind::Sent { .. } => b.sends += 1,
        }
    }
    TraceAnalysis { procs, end_time }
}

impl TraceAnalysis {
    /// Breakdowns whose process name starts with `prefix` (e.g. `"rank"`,
    /// `"kernel"`).
    pub fn group(&self, prefix: &str) -> Vec<&ProcBreakdown> {
        self.procs
            .iter()
            .filter(|p| p.name.starts_with(prefix))
            .collect()
    }

    /// Aggregate fractions `(compute, cpu_wait, recv_wait)` over a group,
    /// weighted by lifetime.
    pub fn group_fractions(&self, prefix: &str) -> (f64, f64, f64) {
        let group = self.group(prefix);
        let total: u64 = group.iter().map(|p| p.span().as_nanos()).sum();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let c: u64 = group.iter().map(|p| p.compute.as_nanos()).sum();
        let q: u64 = group.iter().map(|p| p.cpu_wait.as_nanos()).sum();
        let r: u64 = group.iter().map(|p| p.recv_wait.as_nanos()).sum();
        (
            c as f64 / total as f64,
            q as f64 / total as f64,
            r as f64 / total as f64,
        )
    }

    /// Render the per-process table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "process            span[s]  compute%   cpu-q%   recv-w%   sleep%  sends\n",
        );
        for p in &self.procs {
            out.push_str(&format!(
                "{:<18} {:>8.4} {:>8.1} {:>8.1} {:>9.1} {:>8.1} {:>6}\n",
                p.name,
                p.span().as_secs_f64(),
                100.0 * p.frac(p.compute),
                100.0 * p.frac(p.cpu_wait),
                100.0 * p.frac(p.recv_wait),
                100.0 * p.frac(p.sleep),
                p.sends,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_sim::{SimDuration, Simulator};

    #[test]
    fn breakdown_accounts_for_known_program() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.enable_tracing();
        let cpu = sim.add_resource("cpu");
        let server = sim.spawn("server", move |ctx| {
            while let Some(env) = ctx.recv() {
                ctx.use_resource(cpu, SimDuration::from_millis(2));
                ctx.send(env.from, SimDuration::from_micros(10), env.msg);
            }
        });
        sim.spawn("client", move |ctx| {
            ctx.use_resource(cpu, SimDuration::from_millis(10)); // compute
            ctx.send(server, SimDuration::from_micros(10), 1);
            let _ = ctx.recv(); // recv wait ≈ 2ms + wire
            ctx.sleep(SimDuration::from_millis(5));
        });
        let report = sim.run();
        let analysis = analyze(report.trace.as_ref().unwrap(), report.end_time);
        let client = analysis.procs.iter().find(|p| p.name == "client").unwrap();
        assert_eq!(client.compute, SimDuration::from_millis(10));
        assert_eq!(client.sleep, SimDuration::from_millis(5));
        // Recv wait covers the server's service time plus two wire hops.
        assert_eq!(client.recv_wait, SimDuration::from_micros(2020));
        assert_eq!(client.sends, 1);
        assert_eq!(client.other(), SimDuration::ZERO);
        // The server's compute shows up too.
        let server = analysis.procs.iter().find(|p| p.name == "server").unwrap();
        assert_eq!(server.compute, SimDuration::from_millis(2));
    }

    #[test]
    fn cpu_wait_detected_under_contention() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.enable_tracing();
        let cpu = sim.add_resource("cpu");
        for i in 0..2 {
            sim.spawn(&format!("w{i}"), move |ctx| {
                ctx.use_resource(cpu, SimDuration::from_millis(3));
            });
        }
        let report = sim.run();
        let analysis = analyze(report.trace.as_ref().unwrap(), report.end_time);
        let w1 = analysis.procs.iter().find(|p| p.name == "w1").unwrap();
        assert_eq!(w1.cpu_wait, SimDuration::from_millis(3));
        assert_eq!(w1.compute, SimDuration::from_millis(3));
    }

    #[test]
    fn group_fractions_weighted() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.enable_tracing();
        let cpu = sim.add_resource("cpu");
        sim.spawn("rank0", move |ctx| {
            ctx.use_resource(cpu, SimDuration::from_millis(4));
        });
        sim.spawn("rank1", move |ctx| {
            ctx.sleep(SimDuration::from_millis(4));
        });
        let report = sim.run();
        let analysis = analyze(report.trace.as_ref().unwrap(), report.end_time);
        let (c, q, r) = analysis.group_fractions("rank");
        assert!((c - 0.5).abs() < 0.01, "compute fraction {c}");
        assert_eq!(q, 0.0);
        assert_eq!(r, 0.0);
        assert_eq!(analysis.group("rank").len(), 2);
    }

    #[test]
    fn render_contains_headers_and_rows() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.enable_tracing();
        sim.spawn("p", |ctx| ctx.sleep(SimDuration::from_millis(1)));
        let report = sim.run();
        let analysis = analyze(report.trace.as_ref().unwrap(), report.end_time);
        let text = analysis.render();
        assert!(text.contains("compute%"));
        assert!(text.contains('p'));
    }
}
