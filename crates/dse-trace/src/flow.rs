//! Chrome trace-event export of an assembled cluster trace, with flow
//! arrows stitching the causal chains across PE tracks.
//!
//! Layout: pid 0 carries one track per app thread (`pe0.app`, ...), pid 1
//! one track per kernel thread (`pe0.kernel`, ...). Every span becomes an
//! "X" slice on its thread's track; every linked GM chain becomes a flow
//! (`ph:"s"` → `"t"` → `"f"`) from the requester's dispatch through the
//! home kernel's serve to the redemption, and every barrier/lock round an
//! arrow from the waiter into the coordinator's release/grant slice.
//! Load the file in Perfetto and the arrows draw the cross-PE causality
//! the per-track view hides.
//!
//! Output is deterministic string formatting over the assembled span
//! order — no floats beyond fixed 3-decimal µs, no hash iteration.

use std::fmt::Write as _;

use dse_obs::TraceSpanKind;

use crate::cluster::{derived_serve_id, ClusterTrace};

/// pid of the app-thread tracks.
pub const PID_APP: u32 = 0;
/// pid of the kernel-thread tracks.
pub const PID_KERNEL: u32 = 1;

fn pid_of(kind: TraceSpanKind) -> u32 {
    match kind {
        TraceSpanKind::Serve | TraceSpanKind::BarrierRelease | TraceSpanKind::LockGrant => {
            PID_KERNEL
        }
        _ => PID_APP,
    }
}

struct Emitter {
    out: String,
    first: bool,
}

impl Emitter {
    fn new() -> Emitter {
        Emitter {
            out: String::from("{\"traceEvents\":[\n"),
            first: true,
        }
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push_str(",\n");
        }
    }

    fn us(&mut self, ns: u64) {
        let _ = write!(self.out, "{}.{:03}", ns / 1_000, ns % 1_000);
    }

    fn slice(&mut self, pid: u32, tid: u32, name: &str, start_ns: u64, dur_ns: u64) {
        self.sep();
        let _ = write!(
            self.out,
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{name}\",\"ts\":"
        );
        self.us(start_ns);
        self.out.push_str(",\"dur\":");
        self.us(dur_ns);
        self.out.push('}');
    }

    /// Flow event: phase "s" (start), "t" (step) or "f" (finish).
    fn flow(&mut self, ph: char, id: u64, pid: u32, tid: u32, name: &str, ts_ns: u64) {
        self.sep();
        let _ = write!(
            self.out,
            "{{\"ph\":\"{ph}\",\"cat\":\"causal\",\"id\":{id},\"pid\":{pid},\
             \"tid\":{tid},\"name\":\"{name}\",\"ts\":"
        );
        self.us(ts_ns);
        if ph == 'f' {
            self.out.push_str(",\"bp\":\"e\"");
        }
        self.out.push('}');
    }

    fn name_meta(&mut self, which: &str, pid: u32, tid: Option<u32>, name: &str) {
        self.sep();
        let _ = write!(self.out, "{{\"ph\":\"M\",\"pid\":{pid},");
        if let Some(tid) = tid {
            let _ = write!(self.out, "\"tid\":{tid},");
        }
        let _ = write!(
            self.out,
            "\"name\":\"{which}\",\"args\":{{\"name\":\"{name}\"}}}}"
        );
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        self.out
    }
}

// Flow ids must be unique per arrow chain. Span ids keep bits 62..40
// structured (bit 63 = derived, bit 62 unused), so salting bit 62 yields
// a second id space for the return arrows.
const RETURN_FLOW: u64 = 1 << 62;

/// Render the assembled trace as Chrome trace-event JSON with causal
/// flow arrows across PE tracks.
pub fn chrome_flow_json(trace: &ClusterTrace) -> String {
    let mut e = Emitter::new();
    e.name_meta("process_name", PID_APP, None, "app threads");
    e.name_meta("process_name", PID_KERNEL, None, "kernel threads");
    let mut name = String::new();
    for pe in 0..trace.nprocs as u32 {
        name.clear();
        let _ = write!(name, "pe{pe}.app");
        e.name_meta("thread_name", PID_APP, Some(pe), &name);
        name.clear();
        let _ = write!(name, "pe{pe}.kernel");
        e.name_meta("thread_name", PID_KERNEL, Some(pe), &name);
    }

    // --- Slices: one per span, on its thread's track. ---------------------
    let mut label = String::new();
    for s in &trace.spans {
        label.clear();
        label.push_str(s.kind.label());
        if s.dedup {
            label.push_str(" (replay)");
        }
        if s.seq != 0 {
            let _ = write!(label, " #{}", s.seq);
        }
        if s.bytes > 0 {
            let _ = write!(label, " {}B", s.bytes);
        }
        e.slice(pid_of(s.kind), s.pe, &label, s.start_ns, s.dur_ns());
    }

    // --- GM chains: dispatch -> serve -> redeem. --------------------------
    for s in &trace.spans {
        if s.kind != TraceSpanKind::GmReq {
            continue;
        }
        let serve = trace.spans.iter().find(|v| {
            v.kind == TraceSpanKind::Serve
                && (0..4u32).any(|r| v.span == derived_serve_id(s.span, r))
        });
        let Some(sv) = serve else { continue };
        let redeem = trace
            .spans
            .iter()
            .find(|v| v.kind == TraceSpanKind::Redeem && v.parent == sv.span);
        e.flow('s', s.span, PID_APP, s.pe, "gm", s.start_ns);
        e.flow('t', s.span, PID_KERNEL, sv.pe, "gm", sv.start_ns);
        if let Some(rd) = redeem {
            e.flow('f', s.span, PID_APP, rd.pe, "gm", rd.start_ns);
        }
    }

    // --- Barrier and lock rounds: waiter -> coordinator -> waiter. --------
    for s in &trace.spans {
        let (coord_kind, name) = match s.kind {
            TraceSpanKind::BarrierWait => (TraceSpanKind::BarrierRelease, "barrier"),
            TraceSpanKind::LockWait => (TraceSpanKind::LockGrant, "lock"),
            _ => continue,
        };
        let Some(c) = trace
            .spans
            .iter()
            .find(|v| v.kind == coord_kind && v.seq == s.seq)
        else {
            continue;
        };
        e.flow('s', s.span, PID_APP, s.pe, name, s.start_ns);
        e.flow('f', s.span, PID_KERNEL, c.pe, name, c.start_ns);
        e.flow(
            's',
            s.span | RETURN_FLOW,
            PID_KERNEL,
            c.pe,
            name,
            c.end_ns.saturating_sub(1),
        );
        e.flow(
            'f',
            s.span | RETURN_FLOW,
            PID_APP,
            s.pe,
            name,
            s.end_ns.saturating_sub(1),
        );
    }

    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::assemble;
    use dse_obs::TraceSpanRec;

    #[test]
    fn emits_slices_flows_and_balanced_json() {
        // Reuse the linked chain from the cluster tests: one GM round
        // trip plus a barrier round.
        let app = TraceSpanRec::new(TraceSpanKind::App, 100, 100, 0, 0, 0, 500);
        let mut req = TraceSpanRec::new(TraceSpanKind::GmReq, 100, 101, 100, 0, 10, 60);
        req.seq = 7;
        let sid = derived_serve_id(101, 0);
        let mut serve = TraceSpanRec::new(TraceSpanKind::Serve, 100, sid, 101, 1, 25, 40);
        serve.peer = 0;
        serve.seq = 7;
        let mut redeem = TraceSpanRec::new(TraceSpanKind::Redeem, 100, 102, sid, 0, 55, 60);
        redeem.seq = 7;
        let mut bw = TraceSpanRec::new(TraceSpanKind::BarrierWait, 100, 103, 100, 0, 100, 200);
        bw.seq = 9;
        let mut rel = TraceSpanRec::new(TraceSpanKind::BarrierRelease, 100, 104, 103, 0, 100, 200);
        rel.seq = 9;
        let t = assemble(&[vec![app, req, redeem, bw], vec![serve, rel]]);
        let json = chrome_flow_json(&t);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"pe0.app\""));
        assert!(json.contains("\"pe1.kernel\""));
        assert!(json.contains("\"gm_req #7\""));
        assert!(json.contains("\"ph\":\"s\""), "flow start present");
        assert!(json.contains("\"ph\":\"t\""), "flow step through serve");
        assert!(json.contains("\"ph\":\"f\""), "flow finish present");
        assert!(json.contains("\"bp\":\"e\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Deterministic.
        assert_eq!(json, chrome_flow_json(&t));
    }
}
