//! Wall-clock attribution over an assembled cluster trace: the blame
//! table and the cross-PE critical path.
//!
//! The blame table answers "where did each PE's wall clock go" with an
//! accounting that sums to exactly 100% by construction: every app
//! nanosecond is compute unless a recorded wait span covers it, and every
//! GM-wait nanosecond is net transit unless the home's serve span or the
//! requester's retry backoff claims it. The critical path answers "which
//! chain of spans actually bounded the run": starting from the
//! last-finishing PE it walks backwards through wait spans, hopping PEs
//! at barriers (to the straggler that held the round) and at GM waits
//! (through the home kernel's serve span). Both analyses are pure
//! functions of the trace, so the CI determinism smoke can diff their
//! rendered output byte-for-byte.

use std::collections::HashMap;
use std::fmt::Write as _;

use dse_obs::TraceSpanKind;

use crate::cluster::ClusterTrace;

/// Where one PE's wall clock went, in nanoseconds.
///
/// Invariant: `compute + serve + net + retry + barrier + lock == wall`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlameRow {
    /// PE the row describes.
    pub pe: u32,
    /// App-thread lifetime (the root span's duration).
    pub wall_ns: u64,
    /// Time not covered by any wait span.
    pub compute_ns: u64,
    /// GM-wait time covered by home-kernel serve spans for this PE.
    pub serve_ns: u64,
    /// GM-wait time in flight on the wire (the unexplained remainder).
    pub net_ns: u64,
    /// GM-wait time spent in retransmit backoff.
    pub retry_ns: u64,
    /// Time blocked in barrier rounds.
    pub barrier_ns: u64,
    /// Time blocked waiting for cluster locks.
    pub lock_ns: u64,
}

impl BlameRow {
    /// Total GM-wait time (serve + net + retry).
    pub fn gm_wait_ns(&self) -> u64 {
        self.serve_ns + self.net_ns + self.retry_ns
    }
}

/// Per-PE blame rows plus the cluster total.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlameTable {
    /// One row per PE, ascending.
    pub rows: Vec<BlameRow>,
}

impl BlameTable {
    /// Sum of all rows (the cluster-wide attribution).
    pub fn total(&self) -> BlameRow {
        let mut t = BlameRow::default();
        for r in &self.rows {
            t.wall_ns += r.wall_ns;
            t.compute_ns += r.compute_ns;
            t.serve_ns += r.serve_ns;
            t.net_ns += r.net_ns;
            t.retry_ns += r.retry_ns;
            t.barrier_ns += r.barrier_ns;
            t.lock_ns += r.lock_ns;
        }
        t
    }

    /// Render as a fixed-width ASCII table (percentages of each row's
    /// wall clock; deterministic bytes for deterministic inputs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "pe    wall_us   compute%    serve%      net%    retry%  barrier%     lock%\n",
        );
        let mut line = |tag: &str, r: &BlameRow| {
            let pct = |v: u64| {
                if r.wall_ns == 0 {
                    0.0
                } else {
                    v as f64 * 100.0 / r.wall_ns as f64
                }
            };
            let _ = writeln!(
                out,
                "{tag:<4}{:>10.1}{:>10.1}{:>10.1}{:>10.1}{:>10.1}{:>10.1}{:>10.1}",
                r.wall_ns as f64 / 1_000.0,
                pct(r.compute_ns),
                pct(r.serve_ns),
                pct(r.net_ns),
                pct(r.retry_ns),
                pct(r.barrier_ns),
                pct(r.lock_ns),
            );
        };
        for r in &self.rows {
            line(&r.pe.to_string(), r);
        }
        line("all", &self.total());
        out
    }
}

/// Attribute every PE's wall clock across compute / serve / net / retry /
/// barrier / lock. See [`BlameRow`] for the exact invariant.
pub fn blame(trace: &ClusterTrace) -> BlameTable {
    let mut rows = Vec::new();
    for pe in 0..trace.nprocs as u32 {
        let Some(app) = trace.app_span(pe) else {
            continue;
        };
        let wall = app.dur_ns();
        let sum = |kind: TraceSpanKind| -> u64 {
            trace
                .spans
                .iter()
                .filter(|s| s.pe == pe && s.kind == kind)
                .map(|s| s.dur_ns())
                .sum()
        };
        // Clamp in sequence so the row always accounts for exactly the
        // wall clock even if a clock hiccup over-reports a wait.
        let barrier = sum(TraceSpanKind::BarrierWait).min(wall);
        let lock = sum(TraceSpanKind::LockWait).min(wall - barrier);
        let gm = sum(TraceSpanKind::GmBlock).min(wall - barrier - lock);
        let compute = wall - barrier - lock - gm;
        // Inside the GM wait: the home's serve time (spans at other PEs
        // naming this PE as the requester), then local retry backoff,
        // then whatever is left was wire transit + kernel queueing.
        let serve_raw: u64 = trace
            .spans
            .iter()
            .filter(|s| s.kind == TraceSpanKind::Serve && !s.dedup && s.peer == pe)
            .map(|s| s.dur_ns())
            .sum();
        let serve = serve_raw.min(gm);
        let retry = sum(TraceSpanKind::RetryBackoff).min(gm - serve);
        let net = gm - serve - retry;
        rows.push(BlameRow {
            pe,
            wall_ns: wall,
            compute_ns: compute,
            serve_ns: serve,
            net_ns: net,
            retry_ns: retry,
            barrier_ns: barrier,
            lock_ns: lock,
        });
    }
    BlameTable { rows }
}

/// One hop of the critical path, chronological.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathStep {
    /// PE the time was spent on.
    pub pe: u32,
    /// What the time was (`compute`, `serve`, `net`, a wait label, ...).
    pub what: &'static str,
    /// Step start, engine clock (ns).
    pub start_ns: u64,
    /// Step end, engine clock (ns).
    pub end_ns: u64,
    /// Correlation id of the span behind the step (0 = none).
    pub seq: u64,
}

impl PathStep {
    /// Step duration.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// The chain of spans that bounded the run end-to-end.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CriticalPath {
    /// Steps in chronological order.
    pub steps: Vec<PathStep>,
}

impl CriticalPath {
    /// Total time covered by the path.
    pub fn total_ns(&self) -> u64 {
        self.steps.iter().map(|s| s.dur_ns()).sum()
    }

    /// Per-label totals, in first-appearance order.
    pub fn totals(&self) -> Vec<(&'static str, u64)> {
        let mut order: Vec<&'static str> = Vec::new();
        let mut acc: HashMap<&'static str, u64> = HashMap::new();
        for s in &self.steps {
            if !acc.contains_key(s.what) {
                order.push(s.what);
            }
            *acc.entry(s.what).or_insert(0) += s.dur_ns();
        }
        order.into_iter().map(|w| (w, acc[w])).collect()
    }

    /// Render the path (last `max_steps` hops) plus the per-label rollup.
    pub fn render(&self, max_steps: usize) -> String {
        let mut out = String::new();
        let total = self.total_ns().max(1);
        out.push_str("critical path (chronological):\n");
        let skip = self.steps.len().saturating_sub(max_steps);
        if skip > 0 {
            let _ = writeln!(out, "  ... {skip} earlier steps elided ...");
        }
        for s in &self.steps[skip..] {
            let _ = writeln!(
                out,
                "  pe{:<3} {:<14} {:>12} ns  seq={}",
                s.pe,
                s.what,
                s.dur_ns(),
                s.seq
            );
        }
        out.push_str("by kind:\n");
        for (what, ns) in self.totals() {
            let _ = writeln!(
                out,
                "  {:<14} {:>12} ns {:>6.1}%",
                what,
                ns,
                ns as f64 * 100.0 / total as f64
            );
        }
        out
    }
}

fn is_wait(kind: TraceSpanKind) -> bool {
    matches!(
        kind,
        TraceSpanKind::BarrierWait | TraceSpanKind::LockWait | TraceSpanKind::GmBlock
    )
}

/// Walk the critical path of an assembled trace.
///
/// Start from the app span that finished last, then repeatedly: attribute
/// the gap back to the previous wait on the current PE as compute, then
/// explain the wait — a barrier hops to the straggler whose late arrival
/// released the round, a GM wait routes through the home kernel's serve
/// span (net → serve → net), a lock charges the coordinator's grant. Ties
/// break on `(end, start, span)` so equal traces yield equal paths.
pub fn critical_path(trace: &ClusterTrace) -> CriticalPath {
    let mut rev: Vec<PathStep> = Vec::new();
    let Some(root) = trace
        .spans
        .iter()
        .filter(|s| s.kind == TraceSpanKind::App)
        .max_by_key(|s| (s.end_ns, s.pe))
    else {
        return CriticalPath::default();
    };
    let app_start: HashMap<u32, u64> = trace
        .spans
        .iter()
        .filter(|s| s.kind == TraceSpanKind::App)
        .map(|s| (s.pe, s.start_ns))
        .collect();
    let mut pe = root.pe;
    let mut cursor = root.end_ns;
    // Bounded: the cursor strictly decreases every iteration.
    for _ in 0..1_000_000 {
        let floor = app_start.get(&pe).copied().unwrap_or(0);
        let wait = trace
            .spans
            .iter()
            .filter(|s| s.pe == pe && is_wait(s.kind) && s.end_ns <= cursor && s.start_ns >= floor)
            .max_by_key(|s| (s.end_ns, s.start_ns, s.span));
        let Some(w) = wait else {
            rev.push(PathStep {
                pe,
                what: "compute",
                start_ns: floor.min(cursor),
                end_ns: cursor,
                seq: 0,
            });
            break;
        };
        if cursor > w.end_ns {
            rev.push(PathStep {
                pe,
                what: "compute",
                start_ns: w.end_ns,
                end_ns: cursor,
                seq: 0,
            });
        }
        match w.kind {
            TraceSpanKind::BarrierWait => {
                rev.push(PathStep {
                    pe,
                    what: "barrier_wait",
                    start_ns: w.start_ns,
                    end_ns: w.end_ns,
                    seq: w.seq,
                });
                // The round ended when its last waiter arrived: jump to
                // that PE at its arrival time.
                let straggler = trace
                    .spans
                    .iter()
                    .filter(|s| s.kind == TraceSpanKind::BarrierWait && s.seq == w.seq)
                    .max_by_key(|s| (s.start_ns, s.pe, s.span));
                match straggler {
                    Some(s2) if s2.pe != pe && s2.start_ns < w.end_ns => {
                        pe = s2.pe;
                        cursor = s2.start_ns;
                    }
                    _ => cursor = w.start_ns,
                }
            }
            TraceSpanKind::GmBlock => {
                // Route the wait through the home's serve span when the
                // chain linked: net out, serve, net back.
                let serve = trace
                    .spans
                    .iter()
                    .filter(|s| {
                        s.kind == TraceSpanKind::Serve
                            && s.peer == pe
                            && s.end_ns <= w.end_ns
                            && s.start_ns >= w.start_ns
                    })
                    .max_by_key(|s| (s.end_ns, s.start_ns, s.span));
                if let Some(sv) = serve {
                    rev.push(PathStep {
                        pe,
                        what: "net",
                        start_ns: sv.end_ns,
                        end_ns: w.end_ns,
                        seq: sv.seq,
                    });
                    rev.push(PathStep {
                        pe: sv.pe,
                        what: "serve",
                        start_ns: sv.start_ns,
                        end_ns: sv.end_ns,
                        seq: sv.seq,
                    });
                    rev.push(PathStep {
                        pe,
                        what: "net",
                        start_ns: w.start_ns,
                        end_ns: sv.start_ns,
                        seq: sv.seq,
                    });
                } else {
                    rev.push(PathStep {
                        pe,
                        what: "gm_wait",
                        start_ns: w.start_ns,
                        end_ns: w.end_ns,
                        seq: w.seq,
                    });
                }
                cursor = w.start_ns;
            }
            TraceSpanKind::LockWait => {
                rev.push(PathStep {
                    pe,
                    what: "lock_wait",
                    start_ns: w.start_ns,
                    end_ns: w.end_ns,
                    seq: w.seq,
                });
                cursor = w.start_ns;
            }
            _ => unreachable!("is_wait covers exactly the wait kinds"),
        }
        if cursor <= floor {
            break;
        }
    }
    rev.reverse();
    CriticalPath { steps: rev }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{assemble, derived_serve_id};
    use dse_obs::TraceSpanRec;

    fn rec(
        kind: TraceSpanKind,
        trace: u64,
        id: u64,
        parent: u64,
        pe: u32,
        start: u64,
        end: u64,
    ) -> TraceSpanRec {
        TraceSpanRec::new(kind, trace, id, parent, pe, start, end)
    }

    /// Two PEs: PE0 computes 0..100, blocks on GM 100..200 (serve on PE1
    /// 130..170), computes 200..300, barrier-waits 300..400. PE1 computes
    /// 0..390 (the straggler), barrier-waits 390..400.
    fn two_pe_trace() -> ClusterTrace {
        let mut pe0 = vec![rec(TraceSpanKind::App, 1, 1, 0, 0, 0, 400)];
        let mut req = rec(TraceSpanKind::GmReq, 1, 2, 1, 0, 100, 200);
        req.seq = 5;
        req.peer = 1;
        pe0.push(req);
        let mut blk = rec(TraceSpanKind::GmBlock, 1, 3, 1, 0, 100, 200);
        blk.seq = 5;
        pe0.push(blk);
        let sid = derived_serve_id(2, 0);
        let mut rdm = rec(TraceSpanKind::Redeem, 1, 4, sid, 0, 195, 200);
        rdm.seq = 5;
        pe0.push(rdm);
        let mut bw0 = rec(TraceSpanKind::BarrierWait, 1, 5, 1, 0, 300, 400);
        bw0.seq = 11;
        pe0.push(bw0);

        let mut pe1 = vec![rec(TraceSpanKind::App, 10, 10, 0, 1, 0, 400)];
        let mut sv = rec(TraceSpanKind::Serve, 1, sid, 2, 1, 130, 170);
        sv.peer = 0;
        sv.seq = 5;
        pe1.push(sv);
        let mut bw1 = rec(TraceSpanKind::BarrierWait, 10, 11, 10, 1, 390, 400);
        bw1.seq = 11;
        pe1.push(bw1);
        let mut rel = rec(TraceSpanKind::BarrierRelease, 10, 12, 11, 0, 300, 400);
        rel.seq = 11;
        pe1.push(rel);
        assemble(&[pe0, pe1])
    }

    #[test]
    fn blame_accounts_for_every_nanosecond() {
        let t = two_pe_trace();
        let b = blame(&t);
        assert_eq!(b.rows.len(), 2);
        for r in &b.rows {
            assert_eq!(
                r.compute_ns + r.serve_ns + r.net_ns + r.retry_ns + r.barrier_ns + r.lock_ns,
                r.wall_ns,
                "pe{} must account for its whole wall clock",
                r.pe
            );
        }
        let r0 = &b.rows[0];
        assert_eq!(r0.wall_ns, 400);
        assert_eq!(r0.barrier_ns, 100);
        assert_eq!(r0.serve_ns, 40, "PE1's serve span claims 40ns");
        assert_eq!(r0.net_ns, 60, "the rest of the block is transit");
        assert_eq!(r0.compute_ns, 200);
        let r1 = &b.rows[1];
        assert_eq!(r1.compute_ns, 390);
        assert_eq!(r1.barrier_ns, 10);
        let table = b.render();
        assert!(table.starts_with("pe "), "{table}");
        assert!(table.contains("all"), "{table}");
    }

    #[test]
    fn critical_path_hops_to_the_straggler_and_through_the_serve() {
        let t = two_pe_trace();
        let p = critical_path(&t);
        // Last finisher is PE1 (tie on end, max pe). PE1's wait starts at
        // 390 after pure compute: the path should be pe1 compute then the
        // final barrier wait — no hop back to PE0.
        let labels: Vec<(u32, &str)> = p.steps.iter().map(|s| (s.pe, s.what)).collect();
        assert_eq!(
            labels,
            vec![(1, "compute"), (1, "barrier_wait")],
            "{:?}",
            p.steps
        );
        assert_eq!(p.steps[0].dur_ns(), 390);
        // Remove PE1's straggler wait: now PE0 finishes last and its path
        // routes through the GM serve on PE1.
        let mut spans = t.spans.clone();
        spans.retain(|s| !(s.kind == TraceSpanKind::BarrierWait && s.pe == 1));
        spans.retain(|s| !(s.kind == TraceSpanKind::App && s.pe == 1));
        let t2 = ClusterTrace {
            spans,
            nprocs: 2,
            links: t.links,
        };
        let p2 = critical_path(&t2);
        let labels: Vec<(u32, &str)> = p2.steps.iter().map(|s| (s.pe, s.what)).collect();
        assert_eq!(
            labels,
            vec![
                (0, "compute"),
                (0, "net"),
                (1, "serve"),
                (0, "net"),
                (0, "compute"),
                (0, "barrier_wait"),
            ],
            "{:?}",
            p2.steps
        );
        assert_eq!(p2.total_ns(), 400, "path covers the whole run");
        let rendered = p2.render(10);
        assert!(rendered.contains("critical path"), "{rendered}");
        assert!(rendered.contains("serve"), "{rendered}");
    }

    #[test]
    fn render_caps_steps_but_keeps_totals() {
        let t = two_pe_trace();
        let p = critical_path(&t);
        let r = p.render(1);
        assert!(r.contains("elided"), "{r}");
        assert!(r.contains("by kind:"), "{r}");
    }
}
