//! # dse-trace — execution-trace analysis for DSE runs
//!
//! The paper explains its curves with narratives — "communication frequency
//! is high", "the machine load increases in proportion to the number of
//! kernels", "small computation granularity" — and this crate makes those
//! narratives measurable: enable tracing on a run
//! (`DseConfig::paper().with_tracing(true)`), then
//!
//! * [`analyze`] classifies every process's time into compute / CPU
//!   queueing / communication wait / sleep ([`ProcBreakdown`]);
//! * [`gantt`] renders an ASCII timeline of the whole cluster.
//!
//! See `examples/trace_breakdown.rs` for the DCT fine-vs-coarse grain
//! story told in these terms.
//!
//! For the *live* engine the crate is the causal-trace assembler: each PE
//! of a traced run writes its span stream as JSONL
//! (`dse_obs::TraceRecorder`), [`assemble`] / [`load_trace_dir`] merge
//! the streams into one [`ClusterTrace`], and on top of it
//!
//! * [`blame`] attributes every PE's wall clock across compute / serve /
//!   net / retry / barrier / lock, summing to 100% by construction;
//! * [`critical_path`] walks the chain of spans that bounded the run,
//!   hopping PEs at barriers and through home-kernel serves;
//! * [`chrome_flow_json`] exports the trace with cross-PE flow arrows;
//! * [`ClusterTrace::canonical`] strips timing nondeterminism so CI can
//!   diff two runs byte-for-byte.

#![warn(missing_docs)]

mod blame;
mod breakdown;
mod cluster;
mod flow;
mod gantt;

pub use blame::{blame, critical_path, BlameRow, BlameTable, CriticalPath, PathStep};
pub use breakdown::{analyze, ProcBreakdown, TraceAnalysis};
pub use cluster::{
    assemble, derived_serve_id, load_trace_dir, trace_file_name, write_trace_dir, ClusterTrace,
    LinkStats,
};
pub use flow::{chrome_flow_json, PID_APP, PID_KERNEL};
pub use gantt::gantt;
