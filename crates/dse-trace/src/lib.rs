//! # dse-trace — execution-trace analysis for DSE runs
//!
//! The paper explains its curves with narratives — "communication frequency
//! is high", "the machine load increases in proportion to the number of
//! kernels", "small computation granularity" — and this crate makes those
//! narratives measurable: enable tracing on a run
//! (`DseConfig::paper().with_tracing(true)`), then
//!
//! * [`analyze`] classifies every process's time into compute / CPU
//!   queueing / communication wait / sleep ([`ProcBreakdown`]);
//! * [`gantt`] renders an ASCII timeline of the whole cluster.
//!
//! See `examples/trace_breakdown.rs` for the DCT fine-vs-coarse grain
//! story told in these terms.

#![warn(missing_docs)]

mod breakdown;
mod gantt;

pub use breakdown::{analyze, ProcBreakdown, TraceAnalysis};
pub use gantt::gantt;
