//! ASCII Gantt rendering of a trace: one row per process, one column per
//! time bucket, a letter per dominant activity.
//!
//! Legend: `#` compute (resource held), `q` CPU queueing, `.` waiting for a
//! message, `s` sleeping, space = not yet started / exited / idle.

use dse_sim::{SimTime, TraceKind, TraceRecords};

/// Activity codes per bucket, most important last (later wins ties by
/// painting over).
const IDLE: u8 = b' ';

fn paint(row: &mut [u8], t0: SimTime, t1: SimTime, start: SimTime, bucket_ns: u64, code: u8) {
    if t1 <= start || bucket_ns == 0 {
        return;
    }
    let b0 = (t0.as_nanos().saturating_sub(start.as_nanos())) / bucket_ns;
    let b1 = (t1.as_nanos().saturating_sub(start.as_nanos())).div_ceil(bucket_ns);
    for b in b0..b1.min(row.len() as u64) {
        let cell = &mut row[b as usize];
        // Compute has the highest priority, then queueing, then waits.
        let rank = |c: u8| match c {
            b'#' => 3,
            b'q' => 2,
            b'.' => 1,
            b's' => 1,
            _ => 0,
        };
        if rank(code) >= rank(*cell) {
            *cell = code;
        }
    }
}

/// Render the trace as an ASCII timeline of `width` buckets.
pub fn gantt(trace: &TraceRecords, end_time: SimTime, width: usize) -> String {
    assert!(width > 0);
    let bucket_ns = (end_time.as_nanos().max(1)).div_ceil(width as u64);
    let n = trace.proc_names.len();
    let mut rows = vec![vec![IDLE; width]; n];
    for ev in &trace.events {
        let row = &mut rows[ev.proc.index()];
        match ev.kind {
            TraceKind::ResourceHold { from, until, .. } => {
                paint(row, from, until, SimTime::ZERO, bucket_ns, b'#')
            }
            TraceKind::ResourceWait { from, until, .. } => {
                paint(row, from, until, SimTime::ZERO, bucket_ns, b'q')
            }
            TraceKind::RecvWait { from, until } => {
                paint(row, from, until, SimTime::ZERO, bucket_ns, b'.')
            }
            TraceKind::Sleep { from, until } => {
                paint(row, from, until, SimTime::ZERO, bucket_ns, b's')
            }
            _ => {}
        }
    }
    let name_w = trace
        .proc_names
        .iter()
        .map(|s| s.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    out.push_str(&format!(
        "{:>nw$} |{}| t = 0 .. {}\n",
        "proc",
        "-".repeat(width),
        end_time,
        nw = name_w
    ));
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "{:>nw$} |{}|\n",
            trace.proc_names[i],
            String::from_utf8_lossy(row),
            nw = name_w
        ));
    }
    out.push_str("legend: '#'=compute  'q'=cpu-queue  '.'=recv-wait  's'=sleep\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_sim::{SimDuration, Simulator};

    #[test]
    fn gantt_shows_compute_then_sleep() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.enable_tracing();
        let cpu = sim.add_resource("cpu");
        sim.spawn("p", move |ctx| {
            ctx.use_resource(cpu, SimDuration::from_millis(5));
            ctx.sleep(SimDuration::from_millis(5));
        });
        let report = sim.run();
        let text = gantt(report.trace.as_ref().unwrap(), report.end_time, 10);
        let row = text.lines().nth(1).unwrap();
        let cells: String = row.chars().skip_while(|&c| c != '|').collect();
        // First half compute, second half sleep.
        assert!(cells.contains("#####"), "row: {row}");
        assert!(cells.contains("sssss"), "row: {row}");
    }

    #[test]
    fn gantt_marks_queueing() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.enable_tracing();
        let cpu = sim.add_resource("cpu");
        for i in 0..2 {
            sim.spawn(&format!("w{i}"), move |ctx| {
                ctx.use_resource(cpu, SimDuration::from_millis(4));
            });
        }
        let report = sim.run();
        let text = gantt(report.trace.as_ref().unwrap(), report.end_time, 8);
        let w1 = text.lines().nth(2).unwrap();
        assert!(w1.contains('q'), "second worker should queue: {text}");
    }

    #[test]
    fn empty_trace_renders_header_only_rows() {
        let trace = TraceRecords::default();
        let text = gantt(&trace, SimTime::from_nanos(1000), 5);
        assert!(text.starts_with("proc") || text.contains("proc"));
    }
}
