//! Property tests for the log-bucketed histogram: bucket bounds are
//! monotone, no sample is lost or invented, and every quantile stays
//! inside the observed value range.

use dse_obs::LogHistogram;
use proptest::prelude::*;

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    // Mix magnitudes: exact region, mid-range, and huge values.
    let sample = prop_oneof![
        (0u64..16).boxed(),
        (16u64..100_000).boxed(),
        any::<u64>().boxed(),
    ];
    proptest::collection::vec(sample, 1..200)
}

proptest! {
    #[test]
    fn count_is_conserved(samples in arb_samples()) {
        let mut h = LogHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let bucket_total: u64 = h.nonzero_buckets().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(bucket_total, samples.len() as u64, "buckets must account for every sample");
    }

    #[test]
    fn bucket_bounds_are_monotone(samples in arb_samples()) {
        let mut h = LogHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        for w in buckets.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "bounds must strictly increase: {:?}", buckets);
        }
        prop_assert!(buckets.last().unwrap().0 >= h.max() || h.max() == u64::MAX,
            "last bound must cover the max");
    }

    #[test]
    fn quantiles_stay_within_min_max(samples in arb_samples(), q in 0.0f64..=1.0) {
        let mut h = LogHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let quant = h.quantile(q);
        prop_assert!(quant >= h.min(), "quantile {} below min {}", quant, h.min());
        prop_assert!(quant <= h.max(), "quantile {} above max {}", quant, h.max());
        // Quantiles are monotone in q.
        prop_assert!(h.p50() <= h.p90());
        prop_assert!(h.p90() <= h.p99());
        prop_assert!(h.p99() <= h.p999());
        prop_assert!(h.p999() <= h.quantile(1.0));
    }

    #[test]
    fn min_max_sum_track_inputs(samples in arb_samples()) {
        let mut h = LogHistogram::new();
        let mut sum = 0u64;
        for &v in &samples {
            h.record(v);
            sum = sum.saturating_add(v);
        }
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        prop_assert_eq!(h.sum(), sum);
    }

    #[test]
    fn merge_matches_combined_recording(a in arb_samples(), b in arb_samples()) {
        let mut ha = LogHistogram::new();
        let mut hb = LogHistogram::new();
        let mut all = LogHistogram::new();
        for &v in &a {
            ha.record(v);
            all.record(v);
        }
        for &v in &b {
            hb.record(v);
            all.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha, all);
    }
}
