//! Golden-file test for the Chrome trace exporter: a fixed input must
//! serialize to a byte-identical file, release after release. Any change
//! to the output format is deliberate — regenerate the golden by running
//! this test with `UPDATE_GOLDEN=1` and reviewing the diff.

use dse_obs::{chrome_trace_json, BusInterval, ChromeTraceInput, SpanKind, SpanTable};
use dse_sim::{ProcId, ResourceId, SimTime, TraceEvent, TraceKind, TraceRecords};

fn fixed_input_json() -> String {
    // A miniature but complete trace: two processes, one CPU, a couple of
    // GM-op spans and two bus bins — every event shape the exporter emits.
    let t = |ns| SimTime::from_nanos(ns);
    let trace = TraceRecords {
        proc_names: vec!["kernel.n0".into(), "app.n1".into()],
        events: vec![
            TraceEvent {
                proc: ProcId::from_index(0),
                kind: TraceKind::Start { at: t(0) },
            },
            TraceEvent {
                proc: ProcId::from_index(1),
                kind: TraceKind::Start { at: t(100) },
            },
            TraceEvent {
                proc: ProcId::from_index(1),
                kind: TraceKind::ResourceWait {
                    res: ResourceId::from_index(0),
                    from: t(100),
                    until: t(400),
                },
            },
            TraceEvent {
                proc: ProcId::from_index(1),
                kind: TraceKind::ResourceHold {
                    res: ResourceId::from_index(0),
                    from: t(400),
                    until: t(2_400),
                },
            },
            TraceEvent {
                proc: ProcId::from_index(1),
                kind: TraceKind::Sent {
                    at: t(2_500),
                    to: ProcId::from_index(0),
                },
            },
            TraceEvent {
                proc: ProcId::from_index(0),
                kind: TraceKind::RecvWait {
                    from: t(0),
                    until: t(2_600),
                },
            },
            TraceEvent {
                proc: ProcId::from_index(1),
                kind: TraceKind::Sleep {
                    from: t(2_500),
                    until: t(5_000),
                },
            },
            TraceEvent {
                proc: ProcId::from_index(1),
                kind: TraceKind::Exit { at: t(9_000) },
            },
        ],
    };

    let spans = SpanTable::new();
    spans.open(SpanKind::GmRead, 1, 7, 2_500, 64);
    spans.note_wire(SpanKind::GmRead, 1, 7, 900);
    spans.note_service(SpanKind::GmRead, 1, 7, 300);
    spans.close(SpanKind::GmRead, 1, 7, 6_800);
    spans.open(SpanKind::Barrier, 0, 1, 7_000, 0);
    spans.close(SpanKind::Barrier, 0, 1, 8_500);
    let spans = spans.records();

    let bus = vec![
        BusInterval {
            start_ns: 0,
            width_ns: 1_000_000,
            busy_ns: 420_000,
            frames: 5,
            wire_bytes: 460,
            collisions: 2,
            backoff_ns: 70_000,
            queue_depth_max: 3,
        },
        BusInterval {
            start_ns: 1_000_000,
            width_ns: 1_000_000,
            busy_ns: 80_000,
            frames: 1,
            wire_bytes: 92,
            collisions: 0,
            backoff_ns: 0,
            queue_depth_max: 0,
        },
    ];

    let resource_names = vec!["cpu0".to_string()];
    chrome_trace_json(&ChromeTraceInput {
        trace: Some(&trace),
        resource_names: &resource_names,
        spans: &spans,
        bus: &bus,
    })
}

#[test]
fn chrome_trace_matches_golden_byte_for_byte() {
    let got = fixed_input_json();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_small.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden file present");
    assert_eq!(
        got, want,
        "Chrome trace output changed; run with UPDATE_GOLDEN=1 and review the diff"
    );
}
