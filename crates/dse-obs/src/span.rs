//! Message-level spans: correlate a GM request with its response.
//!
//! A span opens when the API layer issues a remote request, collects wire
//! and kernel-service timestamps as the message moves through the system,
//! and closes when the reply is delivered. Correlation is by
//! `(kind, pe, seq)` where `seq` is the requesting PE's `ReqId` (unique
//! per process), so concurrent requests from different PEs never collide.
//!
//! # Edge-case semantics
//!
//! The table is tolerant of protocol anomalies so instrumentation can
//! never take down a run; each anomaly is counted instead:
//!
//! * **Orphan responses** — closing a key with no open span returns
//!   `None`, records nothing, and increments [`SpanTable::orphan_closes`].
//! * **Duplicate sequence numbers** — opening a key that is already open
//!   *replaces* the earlier open span (the retry wins; the superseded
//!   request can no longer be correlated) and increments
//!   [`SpanTable::reopened`]. The discarded span never reaches the
//!   completed list.
//! * **Requests still open at shutdown** — spans never closed stay in the
//!   in-flight set: they are visible to [`SpanTable::in_flight`] and
//!   [`SpanTable::open_spans`] (which the stall watchdog polls) but are
//!   excluded from [`SpanTable::records`], so exports only ever contain
//!   completed exchanges.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// What operation a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Remote global-memory read.
    GmRead,
    /// Remote global-memory write.
    GmWrite,
    /// Remote fetch-and-add.
    GmFetchAdd,
    /// Coalesced batch of split-phase GM operations (one request message,
    /// one response for the whole batch).
    GmBatch,
    /// Barrier enter-to-release.
    Barrier,
    /// Cluster lock acquire.
    Lock,
    /// Remote function invocation.
    Invoke,
}

impl SpanKind {
    /// Stable label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::GmRead => "gm_read",
            SpanKind::GmWrite => "gm_write",
            SpanKind::GmFetchAdd => "gm_fetch_add",
            SpanKind::GmBatch => "gm_batch",
            SpanKind::Barrier => "barrier",
            SpanKind::Lock => "lock",
            SpanKind::Invoke => "invoke",
        }
    }
}

/// One completed request/response exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Operation type.
    pub kind: SpanKind,
    /// Requesting processor element (node id).
    pub pe: u32,
    /// Correlation sequence number (the requester's `ReqId`).
    pub seq: u64,
    /// Time the request was issued (ns, engine clock).
    pub open_ns: u64,
    /// Time the response was delivered back to the requester (ns).
    pub close_ns: u64,
    /// Time the request spent on the wire (request leg; 0 = loopback or
    /// not recorded).
    pub wire_ns: u64,
    /// Time the serving kernel spent handling the request (0 if not
    /// recorded).
    pub service_ns: u64,
    /// Payload bytes moved (request + reply payloads).
    pub bytes: u64,
}

impl SpanRecord {
    /// End-to-end latency.
    pub fn total_ns(&self) -> u64 {
        self.close_ns.saturating_sub(self.open_ns)
    }
}

#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    open_ns: u64,
    wire_ns: u64,
    service_ns: u64,
    bytes: u64,
}

/// Table of in-flight and completed spans, shared across all PEs.
///
/// Completed spans are appended in close order; under the deterministic
/// simulator that order is reproducible, so exports built from it are too.
#[derive(Debug, Default)]
pub struct SpanTable {
    open: Mutex<HashMap<(SpanKind, u32, u64), OpenSpan>>,
    done: Mutex<Vec<SpanRecord>>,
    orphan_closes: AtomicU64,
    reopened: AtomicU64,
}

/// A still-open span as seen by [`SpanTable::open_spans`] — the stall
/// watchdog's view of requests that have not yet been answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenSpanInfo {
    /// Operation type.
    pub kind: SpanKind,
    /// Requesting processor element.
    pub pe: u32,
    /// Correlation sequence number.
    pub seq: u64,
    /// Time the request was issued (ns, engine clock).
    pub open_ns: u64,
}

impl SpanTable {
    /// An empty table.
    pub fn new() -> SpanTable {
        SpanTable::default()
    }

    /// Start a span at `now_ns` carrying `bytes` of request payload.
    ///
    /// If the key is already open, the earlier span is replaced (and
    /// counted in [`Self::reopened`]) — see the module docs on duplicate
    /// sequence numbers.
    pub fn open(&self, kind: SpanKind, pe: u32, seq: u64, now_ns: u64, bytes: u64) {
        let prev = self.open.lock().insert(
            (kind, pe, seq),
            OpenSpan {
                open_ns: now_ns,
                wire_ns: 0,
                service_ns: 0,
                bytes,
            },
        );
        if prev.is_some() {
            self.reopened.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Attribute request-leg wire time to an open span (no-op if absent).
    pub fn note_wire(&self, kind: SpanKind, pe: u32, seq: u64, wire_ns: u64) {
        if let Some(s) = self.open.lock().get_mut(&(kind, pe, seq)) {
            s.wire_ns = s.wire_ns.saturating_add(wire_ns);
        }
    }

    /// Attribute kernel service time to an open span (no-op if absent).
    pub fn note_service(&self, kind: SpanKind, pe: u32, seq: u64, service_ns: u64) {
        if let Some(s) = self.open.lock().get_mut(&(kind, pe, seq)) {
            s.service_ns = s.service_ns.saturating_add(service_ns);
        }
    }

    /// Add reply payload bytes to an open span (no-op if absent).
    pub fn note_bytes(&self, kind: SpanKind, pe: u32, seq: u64, bytes: u64) {
        if let Some(s) = self.open.lock().get_mut(&(kind, pe, seq)) {
            s.bytes = s.bytes.saturating_add(bytes);
        }
    }

    /// Close a span at `now_ns`, moving it to the completed list.
    /// Returns the record, or `None` for an orphan response (no matching
    /// span was open; counted in [`Self::orphan_closes`]).
    pub fn close(&self, kind: SpanKind, pe: u32, seq: u64, now_ns: u64) -> Option<SpanRecord> {
        let removed = self.open.lock().remove(&(kind, pe, seq));
        let Some(open) = removed else {
            self.orphan_closes.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let rec = SpanRecord {
            kind,
            pe,
            seq,
            open_ns: open.open_ns,
            close_ns: now_ns.max(open.open_ns),
            wire_ns: open.wire_ns,
            service_ns: open.service_ns,
            bytes: open.bytes,
        };
        self.done.lock().push(rec);
        Some(rec)
    }

    /// Number of completed spans.
    pub fn completed(&self) -> usize {
        self.done.lock().len()
    }

    /// Number of still-open spans (normally 0 after a run).
    pub fn in_flight(&self) -> usize {
        self.open.lock().len()
    }

    /// Responses that arrived with no matching open span.
    pub fn orphan_closes(&self) -> u64 {
        self.orphan_closes.load(Ordering::Relaxed)
    }

    /// Opens that replaced an already-open span with the same key.
    pub fn reopened(&self) -> u64 {
        self.reopened.load(Ordering::Relaxed)
    }

    /// Copy out the still-open spans, sorted by (open time, pe, seq, kind)
    /// so iteration order is deterministic. This is what the stall
    /// watchdog polls for requests past their deadline.
    pub fn open_spans(&self) -> Vec<OpenSpanInfo> {
        let mut v: Vec<OpenSpanInfo> = self
            .open
            .lock()
            .iter()
            .map(|(&(kind, pe, seq), s)| OpenSpanInfo {
                kind,
                pe,
                seq,
                open_ns: s.open_ns,
            })
            .collect();
        v.sort_by_key(|o| (o.open_ns, o.pe, o.seq, o.kind));
        v
    }

    /// Copy out completed spans, sorted by (open time, pe, seq, kind) so
    /// the result is deterministic even if close order ever races.
    pub fn records(&self) -> Vec<SpanRecord> {
        let mut v = self.done.lock().clone();
        v.sort_by_key(|r| (r.open_ns, r.pe, r.seq, r.kind));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_note_close_roundtrip() {
        let t = SpanTable::new();
        t.open(SpanKind::GmRead, 2, 7, 1000, 16);
        t.note_wire(SpanKind::GmRead, 2, 7, 120);
        t.note_service(SpanKind::GmRead, 2, 7, 40);
        t.note_bytes(SpanKind::GmRead, 2, 7, 8);
        assert_eq!(t.in_flight(), 1);
        let rec = t.close(SpanKind::GmRead, 2, 7, 1500).unwrap();
        assert_eq!(rec.total_ns(), 500);
        assert_eq!(rec.wire_ns, 120);
        assert_eq!(rec.service_ns, 40);
        assert_eq!(rec.bytes, 24);
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.completed(), 1);
    }

    #[test]
    fn close_without_open_is_none() {
        let t = SpanTable::new();
        assert!(t.close(SpanKind::Barrier, 0, 0, 10).is_none());
        // Same seq from different PEs do not collide.
        t.open(SpanKind::GmWrite, 0, 1, 5, 0);
        t.open(SpanKind::GmWrite, 1, 1, 6, 0);
        assert!(t.close(SpanKind::GmWrite, 1, 1, 9).is_some());
        assert_eq!(t.in_flight(), 1);
    }

    #[test]
    fn orphan_responses_are_counted_not_recorded() {
        let t = SpanTable::new();
        assert!(t.close(SpanKind::GmRead, 0, 99, 10).is_none());
        assert!(t.close(SpanKind::GmRead, 0, 99, 20).is_none());
        assert_eq!(t.orphan_closes(), 2);
        assert_eq!(t.completed(), 0, "orphans never reach the record list");
        // Notes against a missing span are silent no-ops, not orphans.
        t.note_wire(SpanKind::GmRead, 0, 99, 5);
        assert_eq!(t.orphan_closes(), 2);
    }

    #[test]
    fn duplicate_seq_replaces_and_is_counted() {
        let t = SpanTable::new();
        t.open(SpanKind::GmRead, 1, 7, 100, 8);
        t.note_wire(SpanKind::GmRead, 1, 7, 30);
        // Same key opens again (e.g. a retry): the retry wins.
        t.open(SpanKind::GmRead, 1, 7, 500, 16);
        assert_eq!(t.reopened(), 1);
        assert_eq!(t.in_flight(), 1, "replaced span is discarded");
        let rec = t.close(SpanKind::GmRead, 1, 7, 900).unwrap();
        assert_eq!(rec.open_ns, 500, "record reflects the replacing open");
        assert_eq!(rec.wire_ns, 0, "earlier span's annotations are gone");
        assert_eq!(rec.bytes, 16);
        assert_eq!(t.completed(), 1, "only one record for the duplicate key");
    }

    #[test]
    fn open_at_shutdown_stays_in_flight_and_out_of_records() {
        let t = SpanTable::new();
        t.open(SpanKind::GmRead, 0, 1, 100, 0);
        t.open(SpanKind::GmWrite, 2, 5, 50, 0);
        t.open(SpanKind::Lock, 1, 3, 75, 0);
        t.close(SpanKind::Lock, 1, 3, 80);
        // "Shutdown": no further closes. The unanswered requests remain
        // observable but never contaminate the completed exports.
        assert_eq!(t.in_flight(), 2);
        assert_eq!(t.records().len(), 1);
        let open = t.open_spans();
        assert_eq!(
            open,
            vec![
                OpenSpanInfo {
                    kind: SpanKind::GmWrite,
                    pe: 2,
                    seq: 5,
                    open_ns: 50
                },
                OpenSpanInfo {
                    kind: SpanKind::GmRead,
                    pe: 0,
                    seq: 1,
                    open_ns: 100
                },
            ],
            "open spans sorted by open time"
        );
    }

    #[test]
    fn records_sorted_by_open_time() {
        let t = SpanTable::new();
        t.open(SpanKind::Lock, 1, 1, 300, 0);
        t.open(SpanKind::Lock, 0, 1, 100, 0);
        t.close(SpanKind::Lock, 1, 1, 400);
        t.close(SpanKind::Lock, 0, 1, 900);
        let recs = t.records();
        assert_eq!(recs[0].open_ns, 100);
        assert_eq!(recs[1].open_ns, 300);
    }
}
