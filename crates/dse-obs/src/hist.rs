//! Log-bucketed latency histograms.
//!
//! The paper's latency phenomena span five orders of magnitude (sub-µs
//! library calls to multi-ms collision storms), so fixed-width buckets are
//! useless. This histogram uses HDR-style buckets: values `0..16` are
//! exact, above that each power-of-two octave is split into 8 linear
//! sub-buckets, giving a worst-case quantile error of ~12.5% at any scale
//! while keeping `record` branch-light and allocation-free after warm-up.

/// Sub-buckets per octave = `1 << SUB_BITS`.
const SUB_BITS: u32 = 3;
/// Values below this are their own bucket (exact).
const EXACT: u64 = 1 << (SUB_BITS + 1);
/// First octave handled by the log region.
const FIRST_OCTAVE: u32 = SUB_BITS + 1;

/// Index of the bucket containing `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= FIRST_OCTAVE
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & ((1 << SUB_BITS) - 1)) as usize;
    EXACT as usize + ((msb - FIRST_OCTAVE) as usize) * (1 << SUB_BITS) + sub
}

/// Inclusive upper bound of bucket `i` (monotone in `i`).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i < EXACT as usize {
        return i as u64;
    }
    let k = i - EXACT as usize;
    let octave = FIRST_OCTAVE + (k >> SUB_BITS) as u32;
    let sub = (k & ((1 << SUB_BITS) - 1)) as u128;
    let shift = octave - SUB_BITS;
    // The top sub-buckets of octave 63 exceed u64::MAX; saturate there.
    let upper = (((1u128 << SUB_BITS) + sub + 1) << shift) - 1;
    upper.min(u64::MAX as u128) as u64
}

/// A log-bucketed histogram of `u64` samples (latencies in nanoseconds,
/// sizes in bytes, ...).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let i = bucket_index(v);
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if self.count == 1 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q in [0,1]`: the upper bound of the bucket
    /// holding the `ceil(q*count)`-th sample, clamped into `[min, max]`.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile — the tail the serving-SLO story is written in.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, in increasing
    /// bound order. Bounds are monotone and counts sum to [`Self::count`].
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }

    // -- raw-bucket access for the telemetry delta codec (crate-internal) --
    //
    // The aggregate module ships histograms between PEs as *bucket-index*
    // deltas, so it needs to see and rebuild the internal `counts` layout.
    // The invariant preserved by all of these: `counts` never has trailing
    // zero entries (its length is exactly `max nonzero index + 1`), which is
    // what `record` produces and what `PartialEq` compares.

    /// Raw bucket counts, indexed by internal bucket index.
    pub(crate) fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Add `delta` samples' worth of count to bucket `index` (grows the
    /// bucket vector as `record` would). Callers must keep `count`/`sum`
    /// consistent via [`Self::add_totals_raw`].
    pub(crate) fn add_bucket_raw(&mut self, index: usize, delta: u64) {
        if delta == 0 {
            return;
        }
        if index >= self.counts.len() {
            self.counts.resize(index + 1, 0);
        }
        self.counts[index] += delta;
    }

    /// Fold shipped totals into this histogram: `count`/`sum` accumulate,
    /// `min`/`max` are absolute over the emitting series' whole history so
    /// they replace (per-PE series have a single writer).
    pub(crate) fn add_totals_raw(&mut self, count: u64, sum: u64, min: u64, max: u64) {
        self.count += count;
        self.sum = self.sum.saturating_add(sum);
        if self.count > 0 {
            self.min = min;
            self.max = max;
        }
    }

    /// Totals as shipped on the wire: `(count, sum, min, max)`.
    pub(crate) fn totals_raw(&self) -> (u64, u64, u64, u64) {
        (self.count, self.sum, self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_exact() {
        for v in 0..EXACT {
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn bounds_are_monotone_and_contain_their_values() {
        let mut prev = None;
        for i in 0..400 {
            let ub = bucket_upper(i);
            if let Some(p) = prev {
                assert!(ub > p, "bounds must strictly increase ({i})");
            }
            prev = Some(ub);
        }
        for shift in 0..63 {
            for off in [0u64, 1, 3] {
                let v = (1u64 << shift) + off;
                let i = bucket_index(v);
                assert!(v <= bucket_upper(i), "value above its bucket bound");
                if i > 0 {
                    assert!(v > bucket_upper(i - 1), "value below its bucket");
                }
            }
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.p50();
        assert!((450..=600).contains(&p50), "p50 was {p50}");
        let p99 = h.p99();
        assert!((950..=1000).contains(&p99), "p99 was {p99}");
        let p999 = h.p999();
        assert!((990..=1000).contains(&p999), "p999 was {p999}");
        assert!(p99 <= p999);
        assert!(h.quantile(1.0) <= 1000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [0u64, 1, 17, 300, 5_000_000, u64::MAX / 2] {
            a.record(v);
            all.record(v);
        }
        for v in [9u64, 1_000_000_000, 3] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }
}
