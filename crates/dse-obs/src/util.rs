//! Small deterministic formatting helpers shared by the exporters.

use std::fmt::Write as _;

/// Escape `s` into `out` as a JSON string body (no surrounding quotes).
pub(crate) fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Quote and escape `s` as a complete JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_json_into(&mut out, s);
    out.push('"');
    out
}

/// Format nanoseconds as a microsecond JSON number with exactly three
/// decimal places (`1234567` -> `"1234.567"`). Pure integer math, so the
/// output is byte-stable across platforms — required for golden files.
pub(crate) fn us_from_ns(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes() {
        let mut s = String::new();
        escape_json_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn us_formatting() {
        let mut s = String::new();
        us_from_ns(&mut s, 1_234_567);
        s.push(' ');
        us_from_ns(&mut s, 5);
        s.push(' ');
        us_from_ns(&mut s, 0);
        assert_eq!(s, "1234.567 0.005 0.000");
    }
}
