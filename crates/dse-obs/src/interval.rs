//! Per-interval network samples: bus utilization, collisions, backoff,
//! queue depth, binned on the engine clock (virtual time under dse-sim).

/// One fixed-width time bin of bus activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusInterval {
    /// Bin start (ns, engine clock).
    pub start_ns: u64,
    /// Bin width (ns).
    pub width_ns: u64,
    /// Nanoseconds the medium was busy inside this bin.
    pub busy_ns: u64,
    /// Frames whose transmission *ended* in this bin.
    pub frames: u64,
    /// Wire bytes of those frames.
    pub wire_bytes: u64,
    /// Collisions suffered by those frames.
    pub collisions: u64,
    /// Backoff time accumulated by those frames (ns).
    pub backoff_ns: u64,
    /// Maximum contention-queue depth observed in this bin.
    pub queue_depth_max: u64,
}

impl BusInterval {
    /// Fraction of the bin the medium was busy, in [0, 1].
    pub fn utilization(&self) -> f64 {
        if self.width_ns == 0 {
            0.0
        } else {
            (self.busy_ns.min(self.width_ns)) as f64 / self.width_ns as f64
        }
    }

    /// Utilization in integer percent (0..=100), for deterministic export.
    pub fn utilization_pct(&self) -> u64 {
        (self.busy_ns.min(self.width_ns) * 100)
            .checked_div(self.width_ns)
            .unwrap_or(0)
    }
}

/// Accumulates [`BusInterval`] bins as frames complete.
///
/// Callers report each frame once, when its timing is known; the sampler
/// assigns activity to bins. Busy time spanning several bins is split
/// across them, so `busy_ns <= width_ns` holds per bin and utilization is
/// meaningful even with multi-bin frames (collision storms).
#[derive(Debug, Clone)]
pub struct BusSampler {
    width_ns: u64,
    bins: Vec<BusInterval>,
}

/// Default sampling bin: 1 ms of virtual time.
pub const DEFAULT_BIN_NS: u64 = 1_000_000;

impl Default for BusSampler {
    fn default() -> Self {
        BusSampler::new(DEFAULT_BIN_NS)
    }
}

impl BusSampler {
    /// A sampler with the given bin width (ns); width 0 is coerced to 1.
    pub fn new(width_ns: u64) -> BusSampler {
        BusSampler {
            width_ns: width_ns.max(1),
            bins: Vec::new(),
        }
    }

    fn bin_mut(&mut self, index: usize) -> &mut BusInterval {
        if index >= self.bins.len() {
            let width = self.width_ns;
            let old = self.bins.len();
            self.bins.resize_with(index + 1, BusInterval::default);
            for (i, b) in self.bins.iter_mut().enumerate().skip(old) {
                b.start_ns = i as u64 * width;
                b.width_ns = width;
            }
        }
        &mut self.bins[index]
    }

    /// Record one completed frame.
    ///
    /// * `start_ns..end_ns` — time the frame occupied the medium
    ///   (including its backoff/retry window),
    /// * `wire_bytes` — bytes on the wire,
    /// * `collisions` / `backoff_ns` — contention cost of this frame,
    /// * `queue_depth` — senders queued behind the medium when the frame
    ///   was submitted.
    #[allow(clippy::too_many_arguments)]
    pub fn record_frame(
        &mut self,
        start_ns: u64,
        end_ns: u64,
        wire_bytes: u64,
        collisions: u64,
        backoff_ns: u64,
        queue_depth: u64,
    ) {
        let end_ns = end_ns.max(start_ns);
        let width = self.width_ns;
        // Frame-level tallies land in the bin where the frame finished.
        let fin = (end_ns / width) as usize;
        {
            let b = self.bin_mut(fin);
            b.frames += 1;
            b.wire_bytes += wire_bytes;
            b.collisions += collisions;
            b.backoff_ns += backoff_ns;
            b.queue_depth_max = b.queue_depth_max.max(queue_depth);
        }
        // Busy time is split across every bin the frame touches.
        let mut t = start_ns;
        while t < end_ns {
            let i = (t / width) as usize;
            let bin_end = (i as u64 + 1) * width;
            let slice = end_ns.min(bin_end) - t;
            self.bin_mut(i).busy_ns += slice;
            t = bin_end;
        }
    }

    /// The bins recorded so far (dense from t=0; empty bins are zeroed).
    pub fn intervals(&self) -> &[BusInterval] {
        &self.bins
    }

    /// Copy out the bins.
    pub fn to_vec(&self) -> Vec<BusInterval> {
        self.bins.clone()
    }

    /// Configured bin width (ns).
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_time_splits_across_bins() {
        let mut s = BusSampler::new(1000);
        // Frame occupies 500..2500: 500ns in bin0, 1000 in bin1, 500 in bin2.
        s.record_frame(500, 2500, 64, 2, 300, 3);
        let bins = s.intervals();
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0].busy_ns, 500);
        assert_eq!(bins[1].busy_ns, 1000);
        assert_eq!(bins[2].busy_ns, 500);
        // Frame tallies are attributed to the finishing bin.
        assert_eq!(bins[2].frames, 1);
        assert_eq!(bins[2].wire_bytes, 64);
        assert_eq!(bins[2].collisions, 2);
        assert_eq!(bins[2].backoff_ns, 300);
        assert_eq!(bins[2].queue_depth_max, 3);
        assert_eq!(bins[1].utilization_pct(), 100);
        assert_eq!(bins[0].utilization_pct(), 50);
    }

    #[test]
    fn gaps_leave_zeroed_bins() {
        let mut s = BusSampler::new(100);
        s.record_frame(10, 20, 8, 0, 0, 0);
        s.record_frame(510, 520, 8, 0, 0, 1);
        let bins = s.intervals();
        assert_eq!(bins.len(), 6);
        assert_eq!(bins[2].frames, 0);
        assert_eq!(bins[2].busy_ns, 0);
        assert_eq!(bins[2].start_ns, 200);
        assert_eq!(bins[5].frames, 1);
    }

    #[test]
    fn utilization_bounds() {
        let b = BusInterval {
            start_ns: 0,
            width_ns: 100,
            busy_ns: 250, // over-full guard
            ..Default::default()
        };
        assert_eq!(b.utilization_pct(), 100);
        assert!(b.utilization() <= 1.0);
    }
}
