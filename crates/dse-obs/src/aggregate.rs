//! In-band telemetry aggregation: ship per-PE metric *deltas* over the DSE
//! message layer and rebuild a cluster-wide rollup at the aggregating PE.
//!
//! The flow has three pieces:
//!
//! * [`DeltaTracker`] — lives in each PE's kernel loop. Against the shared
//!   [`Registry`](crate::Registry) snapshot it computes what changed since
//!   the previous emission (counter increments, gauge updates, histogram
//!   *bucket* increments) and assigns a per-PE sequence number.
//! * [`TelemetryDelta`] — the emission itself, with a compact binary
//!   encoding ([`TelemetryDelta::encode`]) carried as the opaque payload of
//!   `Message::Telemetry`.
//! * [`ClusterAggregator`] — lives at PE0. Applies decoded deltas in
//!   arrival order, detects sequence gaps (lost deltas) and stale
//!   out-of-order arrivals, tracks per-node staleness, and can replay the
//!   accumulated state as an ordinary
//!   [`MetricsSnapshot`](crate::MetricsSnapshot) rollup at any time.
//!
//! Deltas are normally incremental. A delta with `absolute == true`
//! replaces the aggregator's state for every key it carries — each kernel
//! ships one absolute delta when it shuts down, which self-heals any
//! incremental loss and makes the final rollup exactly equal to a direct
//! registry snapshot.
//!
//! Everything here is engine-neutral: timestamps are plain `u64`
//! nanoseconds from whichever clock drives the run (simulator virtual time
//! or live wall time).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, OnceLock};

use dse_msg::{CodecError, Reader, Writer};

use crate::hist::LogHistogram;
use crate::registry::{MetricKey, MetricsSnapshot};

/// Version byte leading every encoded delta.
///
/// Version 2 is the compact encoding: LEB128 varints for every integer
/// and a static string table for the built-in metric names, so the
/// telemetry plane's bus footprint stays a small fraction of the paper's
/// 10 Mbps shared Ethernet. Version 3 extends the static name table with
/// the sweep-harness throughput counters (`sim/events_processed`,
/// `kernel/gm_ops`); version 4 appends the GM coherence-directory
/// counters (`dir_hits` … `rc_acquires`). The wire layout is unchanged
/// across all of them and the table is append-only, so v2/v3 payloads
/// decode under a v4 reader — only the new indices are out of reach for
/// an older reader, which is why the version byte moves.
const FORMAT_VERSION: u8 = 4;

/// Oldest payload version this reader still accepts. Every version in
/// `MIN_DECODE_VERSION..=FORMAT_VERSION` shares the wire layout; newer
/// versions only append static-name indices.
const MIN_DECODE_VERSION: u8 = 2;

/// Metric names known at build time ship as a one-byte table index; names
/// outside the table fall back to an inline string (index 0 escape). The
/// order is wire format — append only, never reorder.
const STATIC_NAMES: &[&str] = &[
    // subsystems
    "kernel",
    "gm",
    "net",
    "sync",
    // kernel-stats rollup counters (declaration order of `KernelStats`)
    "gm_local_reads",
    "gm_remote_reads",
    "gm_local_writes",
    "gm_remote_writes",
    "gm_bytes_read",
    "gm_bytes_written",
    "fetch_adds",
    "messages",
    "message_bytes",
    "barrier_epochs",
    "lock_grants",
    "invokes",
    "cache_hits",
    "cache_misses",
    "cache_invalidations",
    // kernel service metrics
    "requests_served",
    "service_ns",
    "telemetry_in",
    "gm_stalls",
    // network path
    "lan_msgs",
    "loopback_msgs",
    "wire_latency_ns",
    // GM request latency spans
    "remote_read_ns",
    "remote_write_ns",
    "fetch_add_ns",
    // synchronization waits
    "barrier_wait_ns",
    "lock_wait_ns",
    // split-phase GM pipeline (KernelStats declaration order continued)
    "gm_request_msgs",
    "gm_coalesced",
    "invalidation_rounds",
    "gm_inflight",
    "batch_ns",
    // failure-domain hardening: GM request retry/deadline and corrupt-frame
    // accounting on the live wire path
    "gm_retries",
    "gm_deadline_trips",
    "gm_dup_requests",
    "telemetry_corrupt",
    "stall_escalations",
    // sweep-harness throughput counters (format v3)
    "sim",
    "events_processed",
    "gm_ops",
    // GM coherence directory and release consistency (format v4)
    "dir_hits",
    "dir_misses",
    "dir_leases",
    "dir_invals",
    "rc_deferred_invals",
    "rc_acquires",
];

/// Intern a decoded metric-name string so it can live in a
/// [`MetricKey`]'s `&'static str` fields. The pool is deduplicated, and the
/// set of metric names in a run is small and fixed, so the leak is bounded.
fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut pool = POOL
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .expect("intern pool poisoned");
    if let Some(&hit) = pool.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.insert(leaked);
    leaked
}

fn write_str(w: &mut Writer, s: &str) {
    match STATIC_NAMES.iter().position(|&n| n == s) {
        Some(i) => w.uvar(i as u64 + 1),
        None => {
            w.uvar(0);
            w.bytes(s.as_bytes());
        }
    }
}

fn write_opt_u32(w: &mut Writer, v: Option<u32>) {
    w.uvar(v.map(|x| u64::from(x) + 1).unwrap_or(0));
}

fn write_key(w: &mut Writer, k: &MetricKey) {
    write_str(w, k.subsystem);
    write_str(w, k.name);
    write_opt_u32(w, k.pe);
    write_opt_u32(w, k.machine);
}

fn read_str(r: &mut Reader) -> Result<&'static str, CodecError> {
    let idx = r.uvar()?;
    if idx != 0 {
        return STATIC_NAMES
            .get(idx as usize - 1)
            .copied()
            .ok_or(CodecError::BadLength(idx));
    }
    let raw = r.bytes()?;
    let len = raw.len() as u64;
    // Metric names are ASCII identifiers; anything else is a corrupt frame.
    let s = String::from_utf8(raw).map_err(|_| CodecError::BadLength(len))?;
    Ok(intern(&s))
}

fn read_opt_u32(r: &mut Reader) -> Result<Option<u32>, CodecError> {
    let v = r.uvar()?;
    if v == 0 {
        return Ok(None);
    }
    u32::try_from(v - 1)
        .map(Some)
        .map_err(|_| CodecError::BadLength(v))
}

fn read_key(r: &mut Reader) -> Result<MetricKey, CodecError> {
    let subsystem = read_str(r)?;
    let name = read_str(r)?;
    let pe = read_opt_u32(r)?;
    let machine = read_opt_u32(r)?;
    Ok(MetricKey {
        subsystem,
        name,
        pe,
        machine,
    })
}

/// What changed in one histogram since the previous emission.
///
/// Buckets are shipped by *internal bucket index* with their count
/// increment; `count`/`sum` are increments too, while `min`/`max` are the
/// absolute extremes over the series' whole history (a per-PE series has a
/// single writer, so the latest extremes are always authoritative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistDelta {
    /// `(bucket index, count increment)`, increasing index order.
    pub buckets: Vec<(u32, u64)>,
    /// Sample-count increment.
    pub count: u64,
    /// Sample-sum increment.
    pub sum: u64,
    /// Absolute minimum of the series so far.
    pub min: u64,
    /// Absolute maximum of the series so far.
    pub max: u64,
}

/// One telemetry emission: everything a PE's metrics changed by (or, when
/// `absolute`, their full current values) since its previous emission.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetryDelta {
    /// `true` for a full-state emission that replaces (rather than
    /// accumulates into) the aggregator's entries for the carried keys.
    pub absolute: bool,
    /// Counter increments (or absolute values), sorted by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge snapshots (always absolute values), sorted by key.
    pub gauges: Vec<(MetricKey, u64)>,
    /// Histogram bucket increments (or absolute contents), sorted by key.
    pub hists: Vec<(MetricKey, HistDelta)>,
}

impl TelemetryDelta {
    /// True when the delta carries no changes at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Encode into the compact wire payload carried by `Message::Telemetry`.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(FORMAT_VERSION);
        w.u8(self.absolute as u8);
        w.uvar(self.counters.len() as u64);
        for (k, v) in &self.counters {
            write_key(&mut w, k);
            w.uvar(*v);
        }
        w.uvar(self.gauges.len() as u64);
        for (k, v) in &self.gauges {
            write_key(&mut w, k);
            w.uvar(*v);
        }
        w.uvar(self.hists.len() as u64);
        for (k, h) in &self.hists {
            write_key(&mut w, k);
            w.uvar(h.buckets.len() as u64);
            for (i, c) in &h.buckets {
                w.uvar(u64::from(*i));
                w.uvar(*c);
            }
            w.uvar(h.count);
            w.uvar(h.sum);
            w.uvar(h.min);
            w.uvar(h.max);
        }
        w.finish()
    }

    /// Decode a payload previously produced by [`TelemetryDelta::encode`].
    pub fn decode(buf: &[u8]) -> Result<TelemetryDelta, CodecError> {
        let mut r = Reader::new(buf);
        let version = r.u8()?;
        if !(MIN_DECODE_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(CodecError::BadTag(version));
        }
        let absolute = r.u8()? != 0;
        let n = r.uvar()? as usize;
        let mut counters = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let k = read_key(&mut r)?;
            counters.push((k, r.uvar()?));
        }
        let n = r.uvar()? as usize;
        let mut gauges = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let k = read_key(&mut r)?;
            gauges.push((k, r.uvar()?));
        }
        let n = r.uvar()? as usize;
        let mut hists = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let k = read_key(&mut r)?;
            let nb = r.uvar()? as usize;
            let mut buckets = Vec::with_capacity(nb.min(1024));
            for _ in 0..nb {
                let i = u32::try_from(r.uvar()?).map_err(|_| CodecError::BadLength(u64::MAX))?;
                buckets.push((i, r.uvar()?));
            }
            hists.push((
                k,
                HistDelta {
                    buckets,
                    count: r.uvar()?,
                    sum: r.uvar()?,
                    min: r.uvar()?,
                    max: r.uvar()?,
                },
            ));
        }
        r.expect_end()?;
        Ok(TelemetryDelta {
            absolute,
            counters,
            gauges,
            hists,
        })
    }
}

/// Bucket-level difference between a series' current histogram and the
/// tracker's baseline; `None` when no samples were added.
fn hist_delta(cur: &LogHistogram, base: Option<&LogHistogram>) -> Option<HistDelta> {
    let (cur_count, cur_sum, cur_min, cur_max) = cur.totals_raw();
    let (base_count, base_sum) = base.map(|b| (b.count(), b.sum())).unwrap_or((0, 0));
    if cur_count == base_count {
        return None;
    }
    let base_buckets: &[u64] = base.map(|b| b.bucket_counts()).unwrap_or(&[]);
    let mut buckets = Vec::new();
    for (i, &c) in cur.bucket_counts().iter().enumerate() {
        let prev = base_buckets.get(i).copied().unwrap_or(0);
        if c > prev {
            buckets.push((i as u32, c - prev));
        }
    }
    Some(HistDelta {
        buckets,
        count: cur_count - base_count,
        sum: cur_sum.saturating_sub(base_sum),
        min: cur_min,
        max: cur_max,
    })
}

/// Rebuild a histogram from an absolute [`HistDelta`] (full contents).
fn hist_from_absolute(d: &HistDelta) -> LogHistogram {
    let mut h = LogHistogram::new();
    for (i, c) in &d.buckets {
        h.add_bucket_raw(*i as usize, *c);
    }
    h.add_totals_raw(d.count, d.sum, d.min, d.max);
    h
}

/// Per-PE emission state: remembers what was last shipped so the next
/// emission carries only the difference.
///
/// A tracker for PE `p` ships exactly the series with `key.pe == Some(p)`;
/// the tracker driven on the aggregating PE additionally ships
/// cluster-global series (`key.pe == None`) when built with
/// `include_global`, so every series has exactly one shipper.
#[derive(Debug)]
pub struct DeltaTracker {
    pe: u32,
    include_global: bool,
    seq: u32,
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, u64>,
    hists: BTreeMap<MetricKey, LogHistogram>,
}

impl DeltaTracker {
    /// A fresh tracker for `pe`. Set `include_global` on exactly one PE
    /// (by convention the aggregating PE0) so cluster-global series are
    /// shipped once.
    pub fn new(pe: u32, include_global: bool) -> DeltaTracker {
        DeltaTracker {
            pe,
            include_global,
            seq: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    /// The PE this tracker emits for.
    pub fn pe(&self) -> u32 {
        self.pe
    }

    /// Sequence number of the most recent emission (0 = none yet).
    pub fn last_seq(&self) -> u32 {
        self.seq
    }

    fn relevant(&self, k: &MetricKey) -> bool {
        k.pe == Some(self.pe) || (self.include_global && k.pe.is_none())
    }

    /// The tracker's filtered view of the registry snapshot, with the
    /// synthesized `extra` counters folded in (duplicates accumulate, the
    /// same way `MetricsSnapshot::absorb_counters` merges them).
    #[allow(clippy::type_complexity)]
    fn view(
        &self,
        snap: &MetricsSnapshot,
        extra: &[(MetricKey, u64)],
    ) -> (
        BTreeMap<MetricKey, u64>,
        BTreeMap<MetricKey, u64>,
        BTreeMap<MetricKey, LogHistogram>,
    ) {
        let mut counters: BTreeMap<MetricKey, u64> = snap
            .counters
            .iter()
            .filter(|(k, _)| self.relevant(k))
            .copied()
            .collect();
        for (k, v) in extra {
            if self.relevant(k) {
                *counters.entry(*k).or_insert(0) += v;
            }
        }
        let gauges = snap
            .gauges
            .iter()
            .filter(|(k, _)| self.relevant(k))
            .copied()
            .collect();
        let hists = snap
            .histograms
            .iter()
            .filter(|(k, _)| self.relevant(k))
            .map(|(k, h)| (*k, h.clone()))
            .collect();
        (counters, gauges, hists)
    }

    /// Compute the incremental delta since the previous emission.
    ///
    /// Returns `None` (and leaves the baseline untouched) when nothing
    /// changed and `force` is false; `force` emits an empty heartbeat so
    /// the aggregator's staleness clock still advances. `extra` carries
    /// counters synthesized outside the registry (the per-PE kernel-stats
    /// rollup). On emission the sequence number increments.
    pub fn delta(
        &mut self,
        snap: &MetricsSnapshot,
        extra: &[(MetricKey, u64)],
        force: bool,
    ) -> Option<(u32, TelemetryDelta)> {
        let (counters, gauges, hists) = self.view(snap, extra);
        let mut d = TelemetryDelta::default();
        for (k, v) in &counters {
            let base = self.counters.get(k).copied().unwrap_or(0);
            if *v > base {
                d.counters.push((*k, *v - base));
            }
        }
        for (k, v) in &gauges {
            if self.gauges.get(k) != Some(v) {
                d.gauges.push((*k, *v));
            }
        }
        for (k, h) in &hists {
            if let Some(hd) = hist_delta(h, self.hists.get(k)) {
                d.hists.push((*k, hd));
            }
        }
        if d.is_empty() && !force {
            return None;
        }
        self.counters = counters;
        self.gauges = gauges;
        self.hists = hists;
        self.seq += 1;
        Some((self.seq, d))
    }

    /// Compute a full-state (absolute) emission: every relevant series at
    /// its current value, including zero-valued synthesized counters.
    /// Applied at the aggregator it *replaces* state per key, so it heals
    /// any lost incremental deltas; each kernel ships one at shutdown.
    pub fn absolute(
        &mut self,
        snap: &MetricsSnapshot,
        extra: &[(MetricKey, u64)],
    ) -> (u32, TelemetryDelta) {
        let (counters, gauges, hists) = self.view(snap, extra);
        let d = TelemetryDelta {
            absolute: true,
            counters: counters.iter().map(|(k, v)| (*k, *v)).collect(),
            gauges: gauges.iter().map(|(k, v)| (*k, *v)).collect(),
            hists: hists
                .iter()
                .filter(|(_, h)| h.count() > 0)
                .map(|(k, h)| {
                    let (count, sum, min, max) = h.totals_raw();
                    (
                        *k,
                        HistDelta {
                            buckets: h
                                .bucket_counts()
                                .iter()
                                .enumerate()
                                .filter(|(_, &c)| c > 0)
                                .map(|(i, &c)| (i as u32, c))
                                .collect(),
                            count,
                            sum,
                            min,
                            max,
                        },
                    )
                })
                .collect(),
        };
        self.counters = counters;
        self.gauges = gauges;
        self.hists = hists;
        self.seq += 1;
        (self.seq, d)
    }
}

/// Aggregator-side health of one emitting PE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStatus {
    /// The emitting PE.
    pub pe: u32,
    /// Deltas applied (incremental + absolute).
    pub deltas_applied: u64,
    /// Highest sequence number applied (0 = nothing heard yet).
    pub last_seq: u32,
    /// Deltas known lost: sequence numbers skipped over by later arrivals.
    pub gaps: u64,
    /// Stale incremental deltas dropped because a newer (or absolute)
    /// delta had already been applied.
    pub stale_drops: u64,
    /// Engine clock (ns) of the most recent applied delta.
    pub last_heard_ns: Option<u64>,
    /// True once an absolute (shutdown) delta arrived; the node's rollup
    /// contribution is final.
    pub finalized: bool,
}

impl NodeStatus {
    fn new(pe: u32) -> NodeStatus {
        NodeStatus {
            pe,
            deltas_applied: 0,
            last_seq: 0,
            gaps: 0,
            stale_drops: 0,
            last_heard_ns: None,
            finalized: false,
        }
    }
}

/// The PE0-side rollup: applies per-PE [`TelemetryDelta`]s as they arrive
/// and reconstructs the cluster-wide metric state.
#[derive(Debug, Default)]
pub struct ClusterAggregator {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, u64>,
    hists: BTreeMap<MetricKey, LogHistogram>,
    nodes: Vec<NodeStatus>,
}

impl ClusterAggregator {
    /// An empty aggregator expecting `npes` emitting PEs.
    pub fn new(npes: usize) -> ClusterAggregator {
        ClusterAggregator {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            nodes: (0..npes as u32).map(NodeStatus::new).collect(),
        }
    }

    /// Apply one decoded delta from `pe` at engine time `now_ns`.
    ///
    /// Incremental deltas accumulate; a delta whose sequence number skips
    /// ahead records the skipped emissions as `gaps`, and one at or below
    /// the last applied sequence is dropped as stale (it would double-count
    /// state already covered). Absolute deltas replace per key and mark the
    /// node finalized; incremental deltas still in flight when the node's
    /// absolute flush lands are dropped silently (the flush covers them),
    /// not counted as anomalies.
    pub fn apply(&mut self, pe: u32, seq: u32, now_ns: u64, delta: &TelemetryDelta) {
        if pe as usize >= self.nodes.len() {
            let have = self.nodes.len() as u32;
            self.nodes.extend((have..=pe).map(NodeStatus::new));
        }
        let ns = &mut self.nodes[pe as usize];
        if !delta.absolute {
            if seq <= ns.last_seq {
                // After the node's absolute flush, late in-flight
                // incremental deltas are expected (the flush already
                // covers their state) — only pre-finalize duplicates
                // count as an anomaly.
                if !ns.finalized {
                    ns.stale_drops += 1;
                }
                return;
            }
            if seq > ns.last_seq + 1 {
                ns.gaps += (seq - ns.last_seq - 1) as u64;
            }
        }
        ns.last_seq = ns.last_seq.max(seq);
        ns.deltas_applied += 1;
        ns.last_heard_ns = Some(now_ns);
        if delta.absolute {
            ns.finalized = true;
            for (k, v) in &delta.counters {
                self.counters.insert(*k, *v);
            }
            for (k, v) in &delta.gauges {
                self.gauges.insert(*k, *v);
            }
            for (k, h) in &delta.hists {
                self.hists.insert(*k, hist_from_absolute(h));
            }
        } else {
            for (k, v) in &delta.counters {
                *self.counters.entry(*k).or_insert(0) += v;
            }
            for (k, v) in &delta.gauges {
                self.gauges.insert(*k, *v);
            }
            for (k, h) in &delta.hists {
                let slot = self.hists.entry(*k).or_default();
                for (i, c) in &h.buckets {
                    slot.add_bucket_raw(*i as usize, *c);
                }
                slot.add_totals_raw(h.count, h.sum, h.min, h.max);
            }
        }
    }

    /// Record a telemetry frame from `pe` at sequence `seq` that arrived
    /// but could not be decoded (corrupt or truncated payload). The
    /// emission is lost exactly like a dropped delta, so it counts as a
    /// sequence gap — and it consumes its sequence number, so the next
    /// intact delta does not re-count it. A later delta or the final
    /// absolute flush covers the missing state.
    pub fn note_corrupt(&mut self, pe: u32, seq: u32, now_ns: u64) {
        if pe as usize >= self.nodes.len() {
            let have = self.nodes.len() as u32;
            self.nodes.extend((have..=pe).map(NodeStatus::new));
        }
        let ns = &mut self.nodes[pe as usize];
        if seq <= ns.last_seq {
            // Duplicate of an already-accounted emission: nothing new lost.
            return;
        }
        // Skipped emissions before this one, plus the undecodable one.
        ns.gaps += u64::from(seq - ns.last_seq);
        ns.last_seq = seq;
        ns.last_heard_ns = Some(now_ns);
    }

    /// The reconstructed cluster-wide state as an ordinary snapshot,
    /// ordered like a direct [`Registry`](crate::Registry) snapshot.
    pub fn rollup(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (*k, *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (*k, *v)).collect(),
            histograms: self.hists.iter().map(|(k, h)| (*k, h.clone())).collect(),
        }
    }

    /// Per-PE emission health, indexed by PE.
    pub fn nodes(&self) -> &[NodeStatus] {
        &self.nodes
    }

    /// PEs that are not finalized and have not been heard from within
    /// `deadline_ns` of `now_ns` (never-heard PEs are always stale).
    pub fn stale_pes(&self, now_ns: u64, deadline_ns: u64) -> Vec<u32> {
        self.nodes
            .iter()
            .filter(|n| {
                !n.finalized
                    && n.last_heard_ns
                        .is_none_or(|t| now_ns.saturating_sub(t) > deadline_ns)
            })
            .map(|n| n.pe)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.add(MetricKey::pe("net", "lan_msgs", 0).on_machine(0), 3);
        r.add(MetricKey::pe("net", "lan_msgs", 1).on_machine(1), 5);
        r.set_gauge(MetricKey::global("net", "queue_depth_max"), 7);
        r.record(MetricKey::pe("gm", "remote_read_ns", 1), 120);
        r.record(MetricKey::pe("gm", "remote_read_ns", 1), 90_000);
        r
    }

    #[test]
    fn encode_decode_roundtrip() {
        let reg = sample_registry();
        let mut t = DeltaTracker::new(1, false);
        let (seq, d) = t.delta(&reg.snapshot(), &[], false).unwrap();
        assert_eq!(seq, 1);
        assert!(!d.is_empty());
        let back = TelemetryDelta::decode(&d.encode()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn unknown_version_rejected() {
        let reg = sample_registry();
        let mut t = DeltaTracker::new(0, true);
        let (_, d) = t.delta(&reg.snapshot(), &[], false).unwrap();
        let mut buf = d.encode();
        buf[0] = 9;
        assert_eq!(TelemetryDelta::decode(&buf), Err(CodecError::BadTag(9)));
    }

    #[test]
    fn previous_version_still_decodes() {
        // A v2 payload only ever references the pre-v3 prefix of the static
        // name table, so rewriting the version byte of a delta built from
        // v2-era names is exactly the wire bytes a v2 writer would emit.
        let reg = sample_registry();
        let mut t = DeltaTracker::new(0, true);
        let (_, d) = t.delta(&reg.snapshot(), &[], false).unwrap();
        let mut buf = d.encode();
        assert_eq!(buf[0], FORMAT_VERSION);
        buf[0] = 2;
        let back = TelemetryDelta::decode(&buf).expect("v2 payload must decode");
        assert_eq!(back, d);
    }

    #[test]
    fn v3_names_resolve_via_static_table() {
        // The new counters must ride the string table (index form), not the
        // inline-string escape, and round-trip exactly.
        let d = TelemetryDelta {
            absolute: false,
            counters: vec![
                (MetricKey::global("sim", "events_processed"), 41),
                (MetricKey::pe("kernel", "gm_ops", 2), 17),
            ],
            gauges: Vec::new(),
            hists: Vec::new(),
        };
        let wire = d.encode();
        let back = TelemetryDelta::decode(&wire).unwrap();
        assert_eq!(back, d);
        // Inline strings are escaped with a 0 index then length+bytes; the
        // table hit encodes as a single nonzero varint. None of the new
        // names should appear as raw bytes in the payload.
        for name in ["events_processed", "gm_ops"] {
            assert!(
                !wire.windows(name.len()).any(|w| w == name.as_bytes()),
                "{name} was inline-encoded instead of using the static table"
            );
        }
    }

    #[test]
    fn v3_payload_still_decodes() {
        // A v3 payload only references the pre-v4 prefix of the name
        // table (the coherence counters did not exist), so a delta built
        // from v3-era names with its version byte rewritten to 3 is
        // byte-for-byte what a v3 writer would have emitted.
        let d = TelemetryDelta {
            absolute: false,
            counters: vec![
                (MetricKey::global("sim", "events_processed"), 41),
                (MetricKey::pe("kernel", "gm_ops", 2), 17),
                (MetricKey::pe("kernel", "cache_hits", 1), 5),
            ],
            gauges: Vec::new(),
            hists: Vec::new(),
        };
        let mut buf = d.encode();
        assert_eq!(buf[0], FORMAT_VERSION);
        buf[0] = 3;
        let back = TelemetryDelta::decode(&buf).expect("v3 payload must decode");
        assert_eq!(back, d);
    }

    #[test]
    fn v4_directory_names_resolve_via_static_table() {
        // The coherence counters introduced with format v4 must ride the
        // string table, not the inline-string escape.
        let d = TelemetryDelta {
            absolute: false,
            counters: vec![
                (MetricKey::pe("kernel", "dir_hits", 0), 9),
                (MetricKey::pe("kernel", "dir_misses", 0), 4),
                (MetricKey::pe("kernel", "dir_leases", 1), 6),
                (MetricKey::pe("kernel", "dir_invals", 1), 2),
                (MetricKey::pe("kernel", "rc_deferred_invals", 2), 3),
                (MetricKey::pe("kernel", "rc_acquires", 2), 8),
            ],
            gauges: Vec::new(),
            hists: Vec::new(),
        };
        let wire = d.encode();
        assert_eq!(TelemetryDelta::decode(&wire).unwrap(), d);
        for name in [
            "dir_hits",
            "dir_misses",
            "dir_leases",
            "dir_invals",
            "rc_deferred_invals",
            "rc_acquires",
        ] {
            assert!(
                !wire.windows(name.len()).any(|w| w == name.as_bytes()),
                "{name} was inline-encoded instead of using the static table"
            );
        }
    }

    #[test]
    fn tracker_filters_by_pe_and_global_flag() {
        let reg = sample_registry();
        let snap = reg.snapshot();
        let mut t1 = DeltaTracker::new(1, false);
        let (_, d1) = t1.delta(&snap, &[], false).unwrap();
        assert!(d1.counters.iter().all(|(k, _)| k.pe == Some(1)));
        assert!(d1.gauges.is_empty(), "globals belong to the aggregator PE");
        let mut t0 = DeltaTracker::new(0, true);
        let (_, d0) = t0.delta(&snap, &[], false).unwrap();
        assert_eq!(d0.gauges.len(), 1);
        assert!(d0.counters.iter().all(|(k, _)| k.pe == Some(0)));
    }

    #[test]
    fn incremental_deltas_rebuild_the_snapshot() {
        let reg = sample_registry();
        let mut trackers: Vec<_> = (0..2).map(|p| DeltaTracker::new(p, p == 0)).collect();
        let mut agg = ClusterAggregator::new(2);
        let tick = |trackers: &mut Vec<DeltaTracker>, agg: &mut ClusterAggregator, now| {
            let snap = reg.snapshot();
            for t in trackers.iter_mut() {
                if let Some((seq, d)) = t.delta(&snap, &[], false) {
                    let wire = d.encode();
                    let back = TelemetryDelta::decode(&wire).unwrap();
                    agg.apply(t.pe(), seq, now, &back);
                }
            }
        };
        tick(&mut trackers, &mut agg, 1_000);
        reg.add(MetricKey::pe("net", "lan_msgs", 1).on_machine(1), 4);
        reg.record(MetricKey::pe("gm", "remote_read_ns", 1), 64);
        reg.set_gauge(MetricKey::global("net", "queue_depth_max"), 11);
        tick(&mut trackers, &mut agg, 2_000);
        assert_eq!(agg.rollup(), reg.snapshot());
        assert_eq!(agg.nodes()[1].deltas_applied, 2);
        assert_eq!(agg.nodes()[1].gaps, 0);
        assert_eq!(agg.nodes()[1].last_heard_ns, Some(2_000));
    }

    #[test]
    fn quiet_tracker_skips_unless_forced() {
        let reg = sample_registry();
        let mut t = DeltaTracker::new(1, false);
        assert!(t.delta(&reg.snapshot(), &[], false).is_some());
        assert!(t.delta(&reg.snapshot(), &[], false).is_none());
        let (seq, d) = t.delta(&reg.snapshot(), &[], true).unwrap();
        assert_eq!(seq, 2);
        assert!(d.is_empty(), "forced heartbeat is empty");
    }

    #[test]
    fn extra_counters_merge_like_absorb() {
        let reg = Registry::new();
        reg.add(MetricKey::pe("kernel", "messages", 0), 2);
        let extra = [
            (MetricKey::pe("kernel", "messages", 0), 3),
            (MetricKey::pe("kernel", "invokes", 0), 0),
        ];
        let mut t = DeltaTracker::new(0, true);
        let (seq, d) = t.absolute(&reg.snapshot(), &extra);
        assert_eq!(seq, 1);
        assert!(d.absolute);
        let find = |name: &str| {
            d.counters
                .iter()
                .find(|(k, _)| k.name == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(find("messages"), Some(5));
        assert_eq!(find("invokes"), Some(0), "absolute keeps zero counters");
    }

    #[test]
    fn gap_and_stale_detection() {
        let mut agg = ClusterAggregator::new(2);
        let d = TelemetryDelta {
            absolute: false,
            counters: vec![(MetricKey::pe("net", "lan_msgs", 1), 1)],
            gauges: vec![],
            hists: vec![],
        };
        agg.apply(1, 1, 100, &d);
        agg.apply(1, 4, 200, &d); // seqs 2 and 3 lost
        assert_eq!(agg.nodes()[1].gaps, 2);
        agg.apply(1, 3, 250, &d); // late arrival: stale, must not double-count
        assert_eq!(agg.nodes()[1].stale_drops, 1);
        assert_eq!(
            agg.rollup().counter("net", "lan_msgs", Some(1)),
            Some(2),
            "stale delta must not be applied"
        );
    }

    #[test]
    fn corrupt_frames_count_as_gaps_without_double_counting() {
        let mut agg = ClusterAggregator::new(2);
        let d = TelemetryDelta {
            absolute: false,
            counters: vec![(MetricKey::pe("net", "lan_msgs", 1), 1)],
            gauges: vec![],
            hists: vec![],
        };
        agg.apply(1, 1, 100, &d);
        // Emission 2 arrives undecodable: one gap, sequence consumed.
        agg.note_corrupt(1, 2, 150);
        assert_eq!(agg.nodes()[1].gaps, 1);
        assert_eq!(agg.nodes()[1].last_heard_ns, Some(150));
        // The next intact delta is in sequence — no re-count.
        agg.apply(1, 3, 200, &d);
        assert_eq!(agg.nodes()[1].gaps, 1);
        assert_eq!(agg.nodes()[1].stale_drops, 0);
        // A duplicated corrupt frame adds nothing new.
        agg.note_corrupt(1, 2, 250);
        assert_eq!(agg.nodes()[1].gaps, 1);
        // A corrupt frame that also skips emissions counts them all.
        agg.note_corrupt(1, 6, 300);
        assert_eq!(agg.nodes()[1].gaps, 4);
    }

    #[test]
    fn absolute_heals_lost_deltas() {
        let reg = sample_registry();
        let mut t = DeltaTracker::new(1, false);
        let mut agg = ClusterAggregator::new(2);
        let (s1, d1) = t.delta(&reg.snapshot(), &[], false).unwrap();
        agg.apply(1, s1, 10, &d1);
        // A second incremental is emitted but lost on the wire.
        reg.add(MetricKey::pe("net", "lan_msgs", 1).on_machine(1), 9);
        let _lost = t.delta(&reg.snapshot(), &[], false).unwrap();
        // Shutdown flush: absolute state repairs the aggregator exactly.
        reg.record(MetricKey::pe("gm", "remote_read_ns", 1), 7);
        let (s3, d3) = t.absolute(&reg.snapshot(), &[]);
        let back = TelemetryDelta::decode(&d3.encode()).unwrap();
        agg.apply(1, s3, 30, &back);
        let roll = agg.rollup();
        let direct = reg.snapshot();
        let only_pe1 = |s: &MetricsSnapshot| MetricsSnapshot {
            counters: s
                .counters
                .iter()
                .filter(|(k, _)| k.pe == Some(1))
                .copied()
                .collect(),
            gauges: s
                .gauges
                .iter()
                .filter(|(k, _)| k.pe == Some(1))
                .copied()
                .collect(),
            histograms: s
                .histograms
                .iter()
                .filter(|(k, _)| k.pe == Some(1))
                .cloned()
                .collect(),
        };
        assert_eq!(only_pe1(&roll), only_pe1(&direct));
        assert!(agg.nodes()[1].finalized);
    }

    #[test]
    fn staleness_tracking() {
        let mut agg = ClusterAggregator::new(3);
        let empty = TelemetryDelta::default();
        agg.apply(0, 1, 1_000, &empty);
        agg.apply(
            2,
            1,
            5_000,
            &TelemetryDelta {
                absolute: true,
                ..TelemetryDelta::default()
            },
        );
        // At t=10_000 with a 4_000ns deadline: PE0 last heard 9_000 ago
        // (stale), PE1 never heard (stale), PE2 finalized (never stale).
        assert_eq!(agg.stale_pes(10_000, 4_000), vec![0, 1]);
        assert_eq!(agg.stale_pes(1_500, 4_000), vec![1]);
    }
}
