//! Chrome trace-event (Perfetto-loadable) JSON exporter.
//!
//! Layout:
//! * pid 0 "processes" — one thread per simulated process, with "X"
//!   slices for compute (resource holds), CPU queueing, recv waits and
//!   sleeps, reconstructed from the engine's [`TraceRecords`].
//! * pid 1 "gm-ops" — one thread per PE, with "X" slices for completed
//!   request/response spans (remote reads, barriers, locks, ...).
//! * pid 2 "network" — "C" counter tracks for bus utilization, collisions
//!   and queue depth, one sample per [`BusInterval`] bin.
//!
//! Output is built with deterministic string formatting (no floats beyond
//! fixed 3-decimal µs, no hash-order iteration), so a fixed-seed run
//! exports a byte-identical file — asserted by a golden test.

use std::fmt::Write as _;

use dse_sim::{TraceKind, TraceRecords};

use crate::interval::BusInterval;
use crate::span::SpanRecord;
use crate::util::{escape_json_into, us_from_ns};

/// Everything the exporter needs, engine-neutral.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChromeTraceInput<'a> {
    /// Engine trace (may be empty if tracing was off).
    pub trace: Option<&'a TraceRecords>,
    /// Resource names indexed by `ResourceId::index()` (e.g. `cpu0.1`).
    pub resource_names: &'a [String],
    /// Completed message spans.
    pub spans: &'a [SpanRecord],
    /// Bus activity bins.
    pub bus: &'a [BusInterval],
}

struct Emitter {
    out: String,
    first: bool,
}

impl Emitter {
    fn new() -> Emitter {
        Emitter {
            out: String::from("{\"traceEvents\":[\n"),
            first: true,
        }
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push_str(",\n");
        }
    }

    /// "X" complete event.
    fn slice(&mut self, pid: u32, tid: u32, name: &str, ts_ns: u64, dur_ns: u64) {
        self.sep();
        self.out.push_str("{\"ph\":\"X\",\"pid\":");
        let _ = write!(self.out, "{pid},\"tid\":{tid},\"name\":\"");
        escape_json_into(&mut self.out, name);
        self.out.push_str("\",\"ts\":");
        us_from_ns(&mut self.out, ts_ns);
        self.out.push_str(",\"dur\":");
        us_from_ns(&mut self.out, dur_ns);
        self.out.push('}');
    }

    /// "i" instant event.
    fn instant(&mut self, pid: u32, tid: u32, name: &str, ts_ns: u64) {
        self.sep();
        self.out.push_str("{\"ph\":\"i\",\"s\":\"t\",\"pid\":");
        let _ = write!(self.out, "{pid},\"tid\":{tid},\"name\":\"");
        escape_json_into(&mut self.out, name);
        self.out.push_str("\",\"ts\":");
        us_from_ns(&mut self.out, ts_ns);
        self.out.push('}');
    }

    /// "C" counter event with one series.
    fn counter(&mut self, pid: u32, name: &str, series: &str, ts_ns: u64, value: u64) {
        self.sep();
        self.out.push_str("{\"ph\":\"C\",\"pid\":");
        let _ = write!(self.out, "{pid},\"name\":\"");
        escape_json_into(&mut self.out, name);
        self.out.push_str("\",\"ts\":");
        us_from_ns(&mut self.out, ts_ns);
        self.out.push_str(",\"args\":{\"");
        escape_json_into(&mut self.out, series);
        let _ = write!(self.out, "\":{value}}}}}");
    }

    /// "M" metadata: thread or process name.
    fn name_meta(&mut self, which: &str, pid: u32, tid: Option<u32>, name: &str) {
        self.sep();
        let _ = write!(self.out, "{{\"ph\":\"M\",\"pid\":{pid},");
        if let Some(tid) = tid {
            let _ = write!(self.out, "\"tid\":{tid},");
        }
        let _ = write!(self.out, "\"name\":\"{which}\",\"args\":{{\"name\":\"");
        escape_json_into(&mut self.out, name);
        self.out.push_str("\"}}");
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        self.out
    }
}

/// Process ids used in the exported file.
pub const PID_PROCS: u32 = 0;
/// pid for the GM request/response span tracks.
pub const PID_SPANS: u32 = 1;
/// pid for the network counter tracks.
pub const PID_NET: u32 = 2;

/// Render the trace as a Chrome trace-event JSON document.
pub fn chrome_trace_json(input: &ChromeTraceInput<'_>) -> String {
    let mut e = Emitter::new();
    e.name_meta("process_name", PID_PROCS, None, "processes");
    e.name_meta("process_name", PID_SPANS, None, "gm-ops");
    e.name_meta("process_name", PID_NET, None, "network");

    // --- Engine trace: one thread per simulated process. -----------------
    if let Some(trace) = input.trace {
        for (i, name) in trace.proc_names.iter().enumerate() {
            e.name_meta("thread_name", PID_PROCS, Some(i as u32), name);
        }
        let mut label = String::new();
        for ev in &trace.events {
            let tid = ev.proc.index() as u32;
            match ev.kind {
                TraceKind::Start { at } => e.instant(PID_PROCS, tid, "start", at.as_nanos()),
                TraceKind::ResourceWait { res, from, until } => {
                    label.clear();
                    label.push_str("wait ");
                    label.push_str(
                        input
                            .resource_names
                            .get(res.index())
                            .map(String::as_str)
                            .unwrap_or("res"),
                    );
                    let f = from.as_nanos();
                    e.slice(PID_PROCS, tid, &label, f, until.as_nanos() - f);
                }
                TraceKind::ResourceHold { res, from, until } => {
                    label.clear();
                    label.push_str(
                        input
                            .resource_names
                            .get(res.index())
                            .map(String::as_str)
                            .unwrap_or("hold"),
                    );
                    let f = from.as_nanos();
                    e.slice(PID_PROCS, tid, &label, f, until.as_nanos() - f);
                }
                TraceKind::RecvWait { from, until } => {
                    let f = from.as_nanos();
                    e.slice(PID_PROCS, tid, "recv", f, until.as_nanos() - f);
                }
                TraceKind::Sleep { from, until } => {
                    let f = from.as_nanos();
                    e.slice(PID_PROCS, tid, "sleep", f, until.as_nanos() - f);
                }
                TraceKind::Sent { at, to } => {
                    label.clear();
                    label.push_str("send->");
                    if let Some(n) = trace.proc_names.get(to.index()) {
                        label.push_str(n);
                    } else {
                        let _ = write!(label, "p{}", to.index());
                    }
                    e.instant(PID_PROCS, tid, &label, at.as_nanos());
                }
                TraceKind::Exit { at } => e.instant(PID_PROCS, tid, "exit", at.as_nanos()),
            }
        }
    }

    // --- Message spans: one thread per PE. --------------------------------
    {
        let mut pes: Vec<u32> = input.spans.iter().map(|s| s.pe).collect();
        pes.sort_unstable();
        pes.dedup();
        let mut name = String::new();
        for pe in pes {
            name.clear();
            let _ = write!(name, "pe{pe}");
            e.name_meta("thread_name", PID_SPANS, Some(pe), &name);
        }
        let mut label = String::new();
        for s in input.spans {
            label.clear();
            label.push_str(s.kind.label());
            if s.bytes > 0 {
                let _ = write!(label, " {}B", s.bytes);
            }
            e.slice(PID_SPANS, s.pe, &label, s.open_ns, s.total_ns());
        }
    }

    // --- Network counters. ------------------------------------------------
    for b in input.bus {
        e.counter(
            PID_NET,
            "bus_utilization",
            "pct",
            b.start_ns,
            b.utilization_pct(),
        );
    }
    for b in input.bus {
        if b.collisions > 0 {
            e.counter(PID_NET, "bus_collisions", "n", b.start_ns, b.collisions);
        }
    }
    for b in input.bus {
        if b.queue_depth_max > 0 {
            e.counter(
                PID_NET,
                "bus_queue_depth",
                "max",
                b.start_ns,
                b.queue_depth_max,
            );
        }
    }

    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanKind, SpanTable};

    #[test]
    fn emits_valid_shape() {
        let table = SpanTable::new();
        table.open(SpanKind::GmRead, 0, 1, 1000, 8);
        table.close(SpanKind::GmRead, 0, 1, 3500);
        let spans = table.records();
        let bus = vec![BusInterval {
            start_ns: 0,
            width_ns: 1_000_000,
            busy_ns: 250_000,
            frames: 3,
            wire_bytes: 192,
            collisions: 1,
            backoff_ns: 50_000,
            queue_depth_max: 2,
        }];
        let json = chrome_trace_json(&ChromeTraceInput {
            trace: None,
            resource_names: &[],
            spans: &spans,
            bus: &bus,
        });
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("}"));
        assert!(json.contains("\"gm_read 8B\""));
        assert!(json.contains("\"bus_utilization\""));
        assert!(json.contains("\"ts\":1.000,\"dur\":2.500"));
        // Balanced braces as a cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn deterministic_output() {
        let bus = vec![BusInterval::default()];
        let a = chrome_trace_json(&ChromeTraceInput {
            trace: None,
            resource_names: &[],
            spans: &[],
            bus: &bus,
        });
        let b = chrome_trace_json(&ChromeTraceInput {
            trace: None,
            resource_names: &[],
            spans: &[],
            bus: &bus,
        });
        assert_eq!(a, b);
    }
}
