//! Named metrics registry keyed by subsystem / metric name / PE / machine.
//!
//! Keys are `Copy` pairs of `&'static str` so hot-path updates never
//! allocate; storage is `BTreeMap` so snapshots and exports iterate in a
//! deterministic order regardless of insertion history.

use std::collections::BTreeMap;

use parking_lot::Mutex;

use crate::hist::LogHistogram;
use crate::jsonl;

/// Identity of one metric series.
///
/// `pe`/`machine` are `None` for cluster-global series. Ordering (and thus
/// export order) is subsystem, then name, then pe, then machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Emitting subsystem, e.g. `"kernel"`, `"net"`, `"gm"`, `"api"`.
    pub subsystem: &'static str,
    /// Metric name, e.g. `"remote_read_ns"`.
    pub name: &'static str,
    /// Processor element (node id) the series belongs to, if per-PE.
    pub pe: Option<u32>,
    /// Machine the PE lives on, if known.
    pub machine: Option<u32>,
}

impl MetricKey {
    /// A cluster-global series.
    pub fn global(subsystem: &'static str, name: &'static str) -> MetricKey {
        MetricKey {
            subsystem,
            name,
            pe: None,
            machine: None,
        }
    }

    /// A per-PE series.
    pub fn pe(subsystem: &'static str, name: &'static str, pe: u32) -> MetricKey {
        MetricKey {
            subsystem,
            name,
            pe: Some(pe),
            machine: None,
        }
    }

    /// Attach the machine hosting this PE.
    pub fn on_machine(mut self, machine: u32) -> MetricKey {
        self.machine = Some(machine);
        self
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, u64>,
    histograms: BTreeMap<MetricKey, LogHistogram>,
}

/// Thread-safe metrics registry shared by every kernel/PE in a run.
///
/// Works identically under the simulator (virtual-time samples) and the
/// live engine (wall-clock samples): values are plain `u64`s and the
/// registry never looks at a clock itself.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add `delta` to a counter (creating it at zero).
    pub fn add(&self, key: MetricKey, delta: u64) {
        let mut inner = self.inner.lock();
        *inner.counters.entry(key).or_insert(0) += delta;
    }

    /// Increment a counter by one.
    pub fn incr(&self, key: MetricKey) {
        self.add(key, 1);
    }

    /// Set a gauge to `value` (last write wins).
    pub fn set_gauge(&self, key: MetricKey, value: u64) {
        let mut inner = self.inner.lock();
        inner.gauges.insert(key, value);
    }

    /// Raise a gauge to `value` if it is below it (high-water mark).
    pub fn gauge_max(&self, key: MetricKey, value: u64) {
        let mut inner = self.inner.lock();
        let g = inner.gauges.entry(key).or_insert(0);
        *g = (*g).max(value);
    }

    /// Record one sample into a histogram (creating it empty).
    pub fn record(&self, key: MetricKey, value: u64) {
        let mut inner = self.inner.lock();
        inner.histograms.entry(key).or_default().record(value);
    }

    /// Copy out everything, sorted by key.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, v)| (*k, *v)).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (*k, *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (*k, h.clone()))
                .collect(),
        }
    }
}

/// An owned, ordered copy of a [`Registry`] at one point in time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotone counters, sorted by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// Point-in-time gauges, sorted by key.
    pub gauges: Vec<(MetricKey, u64)>,
    /// Latency/size histograms, sorted by key.
    pub histograms: Vec<(MetricKey, LogHistogram)>,
}

impl MetricsSnapshot {
    /// Look up a counter.
    pub fn counter(&self, subsystem: &str, name: &str, pe: Option<u32>) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k.subsystem == subsystem && k.name == name && k.pe == pe)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge.
    pub fn gauge(&self, subsystem: &str, name: &str, pe: Option<u32>) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(k, _)| k.subsystem == subsystem && k.name == name && k.pe == pe)
            .map(|(_, v)| *v)
    }

    /// Look up a histogram.
    pub fn histogram(&self, subsystem: &str, name: &str, pe: Option<u32>) -> Option<&LogHistogram> {
        self.histograms
            .iter()
            .find(|(k, _)| k.subsystem == subsystem && k.name == name && k.pe == pe)
            .map(|(_, h)| h)
    }

    /// Sum a counter across all PEs (ignores the global series if present).
    pub fn counter_sum_over_pes(&self, subsystem: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.subsystem == subsystem && k.name == name && k.pe.is_some())
            .map(|(_, v)| *v)
            .sum()
    }

    /// Append extra counters (e.g. a per-PE kernel-stats rollup) keeping
    /// the snapshot sorted and deterministic. Duplicate keys accumulate.
    pub fn absorb_counters(&mut self, extra: impl IntoIterator<Item = (MetricKey, u64)>) {
        let mut map: BTreeMap<MetricKey, u64> = self.counters.iter().copied().collect();
        for (k, v) in extra {
            *map.entry(k).or_insert(0) += v;
        }
        self.counters = map.into_iter().collect();
    }

    /// Serialize as JSON Lines (one object per metric; see DESIGN.md for
    /// the schema). Deterministic: ordered by key, integers only.
    pub fn to_jsonl(&self) -> String {
        jsonl::metrics_jsonl(self)
    }

    /// Serialize as CSV (`kind,subsystem,name,pe,machine,value,...`).
    pub fn to_csv(&self) -> String {
        jsonl::metrics_csv(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let r = Registry::new();
        r.add(MetricKey::pe("net", "frames", 1), 2);
        r.incr(MetricKey::pe("net", "frames", 0));
        r.add(MetricKey::pe("net", "frames", 1), 3);
        r.add(MetricKey::global("net", "frames"), 10);
        let s = r.snapshot();
        assert_eq!(s.counter("net", "frames", Some(1)), Some(5));
        assert_eq!(s.counter("net", "frames", Some(0)), Some(1));
        assert_eq!(s.counter("net", "frames", None), Some(10));
        assert_eq!(s.counter_sum_over_pes("net", "frames"), 6);
        // Global (pe=None) sorts before per-PE entries of the same name.
        let keys: Vec<_> = s.counters.iter().map(|(k, _)| k.pe).collect();
        assert_eq!(keys, vec![None, Some(0), Some(1)]);
    }

    #[test]
    fn gauges_and_histograms() {
        let r = Registry::new();
        r.set_gauge(MetricKey::global("net", "queue_depth"), 4);
        r.gauge_max(MetricKey::global("net", "queue_depth_max"), 2);
        r.gauge_max(MetricKey::global("net", "queue_depth_max"), 7);
        r.gauge_max(MetricKey::global("net", "queue_depth_max"), 5);
        r.record(MetricKey::pe("gm", "remote_read_ns", 0), 100);
        r.record(MetricKey::pe("gm", "remote_read_ns", 0), 300);
        let s = r.snapshot();
        assert_eq!(s.gauges[0].1, 4);
        assert_eq!(s.gauges[1].1, 7);
        let h = s.histogram("gm", "remote_read_ns", Some(0)).unwrap();
        assert_eq!(h.count(), 2);
        assert!(h.p50() >= 100 && h.p99() <= 300);
    }

    #[test]
    fn absorb_counters_merges_sorted() {
        let r = Registry::new();
        r.add(MetricKey::pe("kernel", "messages", 1), 1);
        let mut s = r.snapshot();
        s.absorb_counters(vec![
            (MetricKey::pe("kernel", "messages", 0), 4),
            (MetricKey::pe("kernel", "messages", 1), 2),
        ]);
        assert_eq!(s.counter("kernel", "messages", Some(0)), Some(4));
        assert_eq!(s.counter("kernel", "messages", Some(1)), Some(3));
        assert!(s.counters.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
