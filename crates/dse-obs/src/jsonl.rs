//! JSON-Lines / CSV metrics dump.
//!
//! One JSON object per line; integers only and key-sorted input, so a
//! fixed-seed run dumps byte-identical text. Schema (see DESIGN.md):
//!
//! ```text
//! {"type":"counter","subsystem":S,"name":N,"pe":P|null,"machine":M|null,"value":V}
//! {"type":"gauge",  ...same key fields..., "value":V}
//! {"type":"histogram", ...same key fields...,
//!  "count":C,"sum":S,"min":L,"max":H,"p50":A,"p90":B,"p99":D,"p999":E,
//!  "buckets":[[upper,count],...]}
//! ```

use std::fmt::Write as _;

use crate::registry::{MetricKey, MetricsSnapshot};
use crate::util::escape_json_into;

fn key_fields(out: &mut String, k: &MetricKey) {
    out.push_str("\"subsystem\":\"");
    escape_json_into(out, k.subsystem);
    out.push_str("\",\"name\":\"");
    escape_json_into(out, k.name);
    out.push_str("\",\"pe\":");
    match k.pe {
        Some(pe) => {
            let _ = write!(out, "{pe}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"machine\":");
    match k.machine {
        Some(m) => {
            let _ = write!(out, "{m}");
        }
        None => out.push_str("null"),
    }
}

/// Render a snapshot as JSON Lines.
pub fn metrics_jsonl(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (k, v) in &s.counters {
        out.push_str("{\"type\":\"counter\",");
        key_fields(&mut out, k);
        let _ = writeln!(out, ",\"value\":{v}}}");
    }
    for (k, v) in &s.gauges {
        out.push_str("{\"type\":\"gauge\",");
        key_fields(&mut out, k);
        let _ = writeln!(out, ",\"value\":{v}}}");
    }
    for (k, h) in &s.histograms {
        out.push_str("{\"type\":\"histogram\",");
        key_fields(&mut out, k);
        let _ = write!(
            out,
            ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.p50(),
            h.p90(),
            h.p99(),
            h.p999()
        );
        for (i, (ub, c)) in h.nonzero_buckets().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{ub},{c}]");
        }
        out.push_str("]}\n");
    }
    out
}

/// Render a snapshot as CSV (one row per metric; histogram rows carry the
/// summary statistics, not the raw buckets).
pub fn metrics_csv(s: &MetricsSnapshot) -> String {
    let mut out =
        String::from("kind,subsystem,name,pe,machine,value,count,sum,min,max,p50,p90,p99,p999\n");
    let key = |out: &mut String, k: &MetricKey| {
        let _ = write!(out, "{},{},", k.subsystem, k.name);
        match k.pe {
            Some(pe) => {
                let _ = write!(out, "{pe},");
            }
            None => out.push(','),
        }
        match k.machine {
            Some(m) => {
                let _ = write!(out, "{m},");
            }
            None => out.push(','),
        }
    };
    for (k, v) in &s.counters {
        out.push_str("counter,");
        key(&mut out, k);
        let _ = writeln!(out, "{v},,,,,,,,");
    }
    for (k, v) in &s.gauges {
        out.push_str("gauge,");
        key(&mut out, k);
        let _ = writeln!(out, "{v},,,,,,,,");
    }
    for (k, h) in &s.histograms {
        out.push_str("histogram,");
        key(&mut out, k);
        let _ = writeln!(
            out,
            ",{},{},{},{},{},{},{},{}",
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.p50(),
            h.p90(),
            h.p99(),
            h.p999()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn jsonl_lines_parse_by_eye() {
        let r = Registry::new();
        r.add(MetricKey::pe("net", "frames", 0).on_machine(0), 7);
        r.set_gauge(MetricKey::global("net", "queue"), 2);
        r.record(MetricKey::pe("gm", "read_ns", 1), 500);
        let text = r.snapshot().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"type\":\"counter\",\"subsystem\":\"net\",\"name\":\"frames\",\"pe\":0,\"machine\":0,\"value\":7}"
        );
        assert!(lines[1].contains("\"type\":\"gauge\""));
        assert!(lines[2].contains("\"count\":1"));
        assert!(lines[2].contains("\"p999\":"));
        assert!(lines[2].contains("\"buckets\":[["));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
            assert_eq!(l.matches('{').count(), l.matches('}').count());
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let r = Registry::new();
        r.add(MetricKey::global("kernel", "messages"), 3);
        r.record(MetricKey::pe("gm", "read_ns", 0), 10);
        let csv = r.snapshot().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("kind,subsystem"));
        assert!(lines[1].starts_with("counter,kernel,messages,,,3"));
        assert!(lines[2].starts_with("histogram,gm,read_ns,0,,"));
    }
}
