//! Causal trace spans: the per-PE record stream behind cluster tracing.
//!
//! The metrics registry answers "how much"; the causal trace answers
//! "because of what". Every hop of a GM operation — the requester
//! dispatching, the wire transit, the home kernel serving, the response
//! being redeemed, plus barrier and lock rounds through PE0 — emits one
//! [`TraceSpanRec`] into the emitting thread's [`TraceRecorder`]. Each PE
//! writes its records as JSONL; the `dse-trace` assembler merges the
//! per-PE streams back into one causally-linked cluster trace using the
//! `trace`/`span`/`parent` ids, which travel across the wire in the frame
//! trace-context extension (`dse_msg::TraceCtx`).
//!
//! Span ids must be unique cluster-wide *and* deterministic (the CI
//! determinism smoke diffs two seeded runs byte-for-byte), so they are
//! never random: ids minted locally pack `(pe, role, counter)`
//! ([`TraceRecorder::next_id`]); ids that both sides of the wire must
//! agree on are derived by hashing ids they already share
//! ([`derived_span_id`]).

use std::fmt::Write as _;

/// What a causal span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceSpanKind {
    /// A PE's whole app-thread lifetime (the per-PE trace root).
    App,
    /// A GM request on the requester, dispatch to completion.
    GmReq,
    /// The app thread blocked waiting on outstanding GM completions.
    GmBlock,
    /// The home kernel serving one GM request (incl. dedup replays).
    Serve,
    /// The requester kernel redeeming a GM response into the app.
    Redeem,
    /// Elapsed retransmit backoff inside a GM request.
    RetryBackoff,
    /// The app thread inside a barrier, waiting for release.
    BarrierWait,
    /// The PE0 coordinator completing a barrier round.
    BarrierRelease,
    /// The app thread waiting for a cluster lock grant.
    LockWait,
    /// The PE0 coordinator granting a cluster lock.
    LockGrant,
}

impl TraceSpanKind {
    /// Every kind, in serialization order.
    pub const ALL: [TraceSpanKind; 10] = [
        TraceSpanKind::App,
        TraceSpanKind::GmReq,
        TraceSpanKind::GmBlock,
        TraceSpanKind::Serve,
        TraceSpanKind::Redeem,
        TraceSpanKind::RetryBackoff,
        TraceSpanKind::BarrierWait,
        TraceSpanKind::BarrierRelease,
        TraceSpanKind::LockWait,
        TraceSpanKind::LockGrant,
    ];

    /// Stable wire label, used in the JSONL stream and blame table.
    pub fn label(self) -> &'static str {
        match self {
            TraceSpanKind::App => "app",
            TraceSpanKind::GmReq => "gm_req",
            TraceSpanKind::GmBlock => "gm_block",
            TraceSpanKind::Serve => "serve",
            TraceSpanKind::Redeem => "redeem",
            TraceSpanKind::RetryBackoff => "retry_backoff",
            TraceSpanKind::BarrierWait => "barrier_wait",
            TraceSpanKind::BarrierRelease => "barrier_release",
            TraceSpanKind::LockWait => "lock_wait",
            TraceSpanKind::LockGrant => "lock_grant",
        }
    }

    /// Inverse of [`Self::label`].
    pub fn parse(s: &str) -> Option<TraceSpanKind> {
        TraceSpanKind::ALL.iter().copied().find(|k| k.label() == s)
    }
}

/// `peer` value meaning "no peer PE involved".
pub const NO_PEER: u32 = u32::MAX;

/// One closed causal span, as written to the per-PE trace JSONL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpanRec {
    /// Trace id: all spans of one causal chain share it.
    pub trace: u64,
    /// This span's id, unique cluster-wide.
    pub span: u64,
    /// Parent span id (0 = root of its trace).
    pub parent: u64,
    /// PE the span executed on.
    pub pe: u32,
    /// What the span measures.
    pub kind: TraceSpanKind,
    /// Start, engine clock (ns).
    pub start_ns: u64,
    /// End, engine clock (ns).
    pub end_ns: u64,
    /// Remote PE involved ([`NO_PEER`] when none).
    pub peer: u32,
    /// Payload bytes moved (0 when n/a).
    pub bytes: u64,
    /// Correlation id: GM request / barrier / lock sequence (0 when n/a).
    pub seq: u64,
    /// Serve spans: true when answered from the dedup cache (a replay).
    pub dedup: bool,
    /// GmReq spans: retransmits sent before completion.
    pub retries: u32,
}

impl TraceSpanRec {
    /// A span with the required fields set and the optional attributes
    /// (`peer`/`bytes`/`seq`/`dedup`/`retries`) at their "absent" values.
    pub fn new(
        kind: TraceSpanKind,
        trace: u64,
        span: u64,
        parent: u64,
        pe: u32,
        start_ns: u64,
        end_ns: u64,
    ) -> TraceSpanRec {
        TraceSpanRec {
            trace,
            span,
            parent,
            pe,
            kind,
            start_ns,
            end_ns,
            peer: NO_PEER,
            bytes: 0,
            seq: 0,
            dedup: false,
            retries: 0,
        }
    }

    /// Span duration in nanoseconds (0 if the clock went backwards).
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Append this span as one JSONL line (with trailing newline). Fields
    /// are emitted in a fixed order so equal spans produce equal bytes.
    pub fn write_jsonl(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "{{\"trace\":{},\"span\":{},\"parent\":{},\"pe\":{},\"kind\":\"{}\",\
             \"start_ns\":{},\"end_ns\":{},\"peer\":{},\"bytes\":{},\"seq\":{},\
             \"dedup\":{},\"retries\":{}}}",
            self.trace,
            self.span,
            self.parent,
            self.pe,
            self.kind.label(),
            self.start_ns,
            self.end_ns,
            self.peer,
            self.bytes,
            self.seq,
            self.dedup,
            self.retries,
        );
    }

    /// Parse one line produced by [`Self::write_jsonl`]. The parser is
    /// strict about field order — the format is ours on both ends.
    pub fn parse_line(line: &str) -> Result<TraceSpanRec, String> {
        let mut cur = Cursor { s: line.trim() };
        cur.tag("{\"trace\":")?;
        let trace = cur.u64()?;
        cur.tag(",\"span\":")?;
        let span = cur.u64()?;
        cur.tag(",\"parent\":")?;
        let parent = cur.u64()?;
        cur.tag(",\"pe\":")?;
        let pe = cur.u64()? as u32;
        cur.tag(",\"kind\":\"")?;
        let kind_s = cur.until_quote()?;
        let kind =
            TraceSpanKind::parse(kind_s).ok_or_else(|| format!("unknown span kind '{kind_s}'"))?;
        cur.tag(",\"start_ns\":")?;
        let start_ns = cur.u64()?;
        cur.tag(",\"end_ns\":")?;
        let end_ns = cur.u64()?;
        cur.tag(",\"peer\":")?;
        let peer = cur.u64()? as u32;
        cur.tag(",\"bytes\":")?;
        let bytes = cur.u64()?;
        cur.tag(",\"seq\":")?;
        let seq = cur.u64()?;
        cur.tag(",\"dedup\":")?;
        let dedup = cur.bool()?;
        cur.tag(",\"retries\":")?;
        let retries = cur.u64()? as u32;
        cur.tag("}")?;
        if !cur.s.is_empty() {
            return Err(format!("trailing bytes after span record: '{}'", cur.s));
        }
        Ok(TraceSpanRec {
            trace,
            span,
            parent,
            pe,
            kind,
            start_ns,
            end_ns,
            peer,
            bytes,
            seq,
            dedup,
            retries,
        })
    }
}

/// Parse a whole per-PE trace stream (blank lines ignored).
pub fn parse_trace_jsonl(text: &str) -> Result<Vec<TraceSpanRec>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(TraceSpanRec::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

struct Cursor<'a> {
    s: &'a str,
}

impl<'a> Cursor<'a> {
    fn tag(&mut self, t: &str) -> Result<(), String> {
        match self.s.strip_prefix(t) {
            Some(rest) => {
                self.s = rest;
                Ok(())
            }
            None => Err(format!("expected '{t}' at '{}'", trunc(self.s))),
        }
    }

    fn u64(&mut self) -> Result<u64, String> {
        let end = self
            .s
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.s.len());
        if end == 0 {
            return Err(format!("expected number at '{}'", trunc(self.s)));
        }
        let v = self.s[..end]
            .parse()
            .map_err(|e| format!("bad number: {e}"))?;
        self.s = &self.s[end..];
        Ok(v)
    }

    fn bool(&mut self) -> Result<bool, String> {
        if self.tag("true").is_ok() {
            Ok(true)
        } else if self.tag("false").is_ok() {
            Ok(false)
        } else {
            Err(format!("expected bool at '{}'", trunc(self.s)))
        }
    }

    fn until_quote(&mut self) -> Result<&'a str, String> {
        let end = self
            .s
            .find('"')
            .ok_or_else(|| format!("unterminated string at '{}'", trunc(self.s)))?;
        let v = &self.s[..end];
        self.s = &self.s[end + 1..];
        Ok(v)
    }
}

fn trunc(s: &str) -> &str {
    &s[..s.len().min(24)]
}

/// Which thread on a PE is minting span ids; part of the id space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRole {
    /// The application thread.
    App,
    /// The kernel (message-loop) thread.
    Kernel,
}

/// Deterministic span-id mint plus buffer for one emitting thread.
///
/// Ids pack `(pe+1, role, counter)` into a `u64` — bit 63 clear — so two
/// recorders on different `(pe, role)` pairs can never collide, and the
/// same run always mints the same ids in the same order. Recording into a
/// disabled recorder is a no-op so instrumentation hooks can stay in hot
/// paths unconditionally.
#[derive(Debug)]
pub struct TraceRecorder {
    pe: u32,
    role: TraceRole,
    enabled: bool,
    next: u64,
    spans: Vec<TraceSpanRec>,
}

impl TraceRecorder {
    /// An enabled recorder for thread `(pe, role)`.
    pub fn new(pe: u32, role: TraceRole) -> TraceRecorder {
        TraceRecorder {
            pe,
            role,
            enabled: true,
            next: 0,
            spans: Vec::new(),
        }
    }

    /// A disabled recorder: ids still mint, pushes are dropped.
    pub fn disabled(pe: u32, role: TraceRole) -> TraceRecorder {
        TraceRecorder {
            enabled: false,
            ..TraceRecorder::new(pe, role)
        }
    }

    /// True when pushed spans are kept.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// PE this recorder belongs to.
    pub fn pe(&self) -> u32 {
        self.pe
    }

    /// Mint the next deterministic span id for this thread.
    pub fn next_id(&mut self) -> u64 {
        self.next += 1;
        let role = match self.role {
            TraceRole::App => 0u64,
            TraceRole::Kernel => 1u64,
        };
        ((self.pe as u64 + 1) << 40) | (role << 39) | self.next
    }

    /// Keep a closed span (dropped when disabled).
    pub fn push(&mut self, rec: TraceSpanRec) {
        if self.enabled {
            self.spans.push(rec);
        }
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Drain the buffered spans (recorder stays usable).
    pub fn take(&mut self) -> Vec<TraceSpanRec> {
        std::mem::take(&mut self.spans)
    }

    /// Render the buffered spans as JSONL, in push order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            s.write_jsonl(&mut out);
        }
        out
    }
}

/// Derive a span id both wire endpoints can compute without an extra
/// round-trip: hash ids they already share (e.g. the GM request's root
/// span id and the dedup replay index). Bit 63 is forced on, so derived
/// ids never collide with [`TraceRecorder::next_id`] mints.
pub fn derived_span_id(seed: u64, salt: u64) -> u64 {
    splitmix64(seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)) | (1 << 63)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_roundtrips_through_jsonl() {
        for (i, kind) in TraceSpanKind::ALL.iter().enumerate() {
            let mut rec = TraceSpanRec::new(*kind, 77, 1000 + i as u64, 3, 2, 10, 250);
            rec.peer = 4;
            rec.bytes = 64;
            rec.seq = 9;
            rec.dedup = i % 2 == 0;
            rec.retries = i as u32;
            let mut line = String::new();
            rec.write_jsonl(&mut line);
            assert!(line.ends_with('\n'));
            let back = TraceSpanRec::parse_line(&line).unwrap();
            assert_eq!(back, rec);
            assert_eq!(TraceSpanKind::parse(kind.label()), Some(*kind));
        }
    }

    #[test]
    fn stream_parse_skips_blank_lines_and_reports_position() {
        let a = TraceSpanRec::new(TraceSpanKind::GmReq, 1, 2, 0, 0, 5, 9);
        let b = TraceSpanRec::new(TraceSpanKind::Serve, 1, 3, 2, 1, 6, 8);
        let mut text = String::new();
        a.write_jsonl(&mut text);
        text.push('\n');
        b.write_jsonl(&mut text);
        let spans = parse_trace_jsonl(&text).unwrap();
        assert_eq!(spans, vec![a, b]);

        let err = parse_trace_jsonl("{\"trace\":1,\"span\":oops").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = TraceSpanRec::parse_line(
            "{\"trace\":1,\"span\":2,\"parent\":0,\"pe\":0,\"kind\":\"nope\",\
             \"start_ns\":0,\"end_ns\":0,\"peer\":0,\"bytes\":0,\"seq\":0,\
             \"dedup\":false,\"retries\":0}",
        )
        .unwrap_err();
        assert!(err.contains("unknown span kind"), "{err}");
    }

    #[test]
    fn recorder_ids_are_deterministic_and_disjoint_across_threads() {
        let mut app0 = TraceRecorder::new(0, TraceRole::App);
        let mut krn0 = TraceRecorder::new(0, TraceRole::Kernel);
        let mut app1 = TraceRecorder::new(1, TraceRole::App);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            for r in [&mut app0, &mut krn0, &mut app1] {
                let id = r.next_id();
                assert!(seen.insert(id), "duplicate span id {id:#x}");
                assert_eq!(id >> 63, 0, "minted ids keep bit 63 clear");
            }
        }
        // Re-minting from a fresh recorder replays the same sequence.
        let mut again = TraceRecorder::new(0, TraceRole::App);
        assert_eq!(again.next_id(), (1u64 << 40) | 1);
        assert_eq!(again.next_id(), (1u64 << 40) | 2);
    }

    #[test]
    fn derived_ids_are_stable_and_marked() {
        let a = derived_span_id(0xdead_beef, 0);
        let b = derived_span_id(0xdead_beef, 0);
        let c = derived_span_id(0xdead_beef, 1);
        assert_eq!(a, b, "same inputs, same id");
        assert_ne!(a, c, "different replay index, different id");
        assert_eq!(a >> 63, 1, "derived ids carry bit 63");
    }

    #[test]
    fn disabled_recorder_drops_pushes_but_still_mints() {
        let mut r = TraceRecorder::disabled(3, TraceRole::Kernel);
        assert!(!r.enabled());
        let id = r.next_id();
        r.push(TraceSpanRec::new(TraceSpanKind::Serve, 1, id, 0, 3, 0, 1));
        assert!(r.is_empty());
        assert_eq!(r.to_jsonl(), "");
    }

    #[test]
    fn recorder_jsonl_matches_record_serialization() {
        let mut r = TraceRecorder::new(2, TraceRole::App);
        let id = r.next_id();
        let rec = TraceSpanRec::new(TraceSpanKind::BarrierWait, 5, id, 0, 2, 100, 900);
        r.push(rec);
        let mut want = String::new();
        rec.write_jsonl(&mut want);
        assert_eq!(r.to_jsonl(), want);
        assert_eq!(r.take(), vec![rec]);
        assert!(r.is_empty(), "take drains");
    }
}
