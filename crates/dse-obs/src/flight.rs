//! Flight recorder: a fixed-size ring of the most recent runtime events.
//!
//! Unlike the full span/trace exports (which keep everything), the flight
//! recorder keeps only the last `capacity` events and is meant to be
//! dumped *post mortem* — when the stall watchdog trips, the ring holds
//! the messages and span closures leading up to the stall, exactly the
//! context needed to diagnose a lost response or a protocol deadlock.
//!
//! Recording is cheap (one ring push under a mutex) and a recorder built
//! with [`FlightRecorder::disabled`] is a no-op, so the hooks can stay in
//! the hot paths unconditionally.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::span::{SpanKind, SpanRecord};
use crate::util;

/// What happened, at the granularity useful for post-mortem debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A runtime message left a PE.
    Bus {
        /// Message kind label (`Message::label`).
        label: &'static str,
        /// Destination PE.
        to_pe: u32,
        /// Encoded size in bytes.
        bytes: u64,
    },
    /// A request/response span completed.
    SpanClose {
        /// Operation kind.
        kind: SpanKind,
        /// Correlation sequence number.
        seq: u64,
        /// End-to-end latency.
        total_ns: u64,
    },
    /// The stall watchdog flagged an open request past its deadline.
    Stall {
        /// Operation kind of the stalled request.
        kind: SpanKind,
        /// Correlation sequence number.
        seq: u64,
        /// How long the request had been open when flagged.
        waited_ns: u64,
    },
    /// A telemetry delta was applied at the aggregator.
    Telemetry {
        /// Emission sequence number.
        seq: u32,
        /// Whether it was an absolute (shutdown) delta.
        absolute: bool,
    },
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Engine clock (ns) when the event happened.
    pub t_ns: u64,
    /// PE the event is attributed to (sender / requester / emitter).
    pub pe: u32,
    /// Causal trace id of the in-flight operation (0 = not traced).
    pub trace: u64,
    /// Causal span id of the in-flight operation (0 = not traced).
    pub span: u64,
    /// The event itself.
    pub kind: FlightEventKind,
}

/// Fixed-capacity ring buffer of recent [`FlightEvent`]s.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<FlightEvent>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (0 disables it).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
        }
    }

    /// A disabled recorder: every hook is a no-op.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder::with_capacity(0)
    }

    /// True when events are being kept.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Record one event, evicting the oldest when full.
    pub fn record(&self, t_ns: u64, pe: u32, kind: FlightEventKind) {
        self.record_traced(t_ns, pe, 0, 0, kind);
    }

    /// Record one event tagged with the causal trace/span ids of the
    /// operation in flight (0/0 when the operation is untraced), so a
    /// post-mortem dump can be joined against the assembled cluster trace.
    pub fn record_traced(&self, t_ns: u64, pe: u32, trace: u64, span: u64, kind: FlightEventKind) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(FlightEvent {
            t_ns,
            pe,
            trace,
            span,
            kind,
        });
    }

    /// Convenience hook: record a completed span.
    pub fn span(&self, rec: &SpanRecord) {
        self.record(
            rec.close_ns,
            rec.pe,
            FlightEventKind::SpanClose {
                kind: rec.kind,
                seq: rec.seq,
                total_ns: rec.total_ns(),
            },
        );
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// True when nothing has been recorded (or the recorder is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out the ring, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.ring.lock().iter().copied().collect()
    }

    /// Dump the ring as JSONL, oldest first: one object per event with a
    /// `"type"` discriminator (`bus`/`span_close`/`stall`/`telemetry`).
    /// Events recorded with causal ids carry `"trace"`/`"span"` fields.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&format!("{{\"t_ns\":{},\"pe\":{},", e.t_ns, e.pe));
            if e.trace != 0 {
                out.push_str(&format!("\"trace\":{},\"span\":{},", e.trace, e.span));
            }
            match e.kind {
                FlightEventKind::Bus {
                    label,
                    to_pe,
                    bytes,
                } => {
                    out.push_str(&format!(
                        "\"type\":\"bus\",\"msg\":{},\"to_pe\":{to_pe},\"bytes\":{bytes}",
                        util::json_str(label)
                    ));
                }
                FlightEventKind::SpanClose {
                    kind,
                    seq,
                    total_ns,
                } => {
                    out.push_str(&format!(
                        "\"type\":\"span_close\",\"kind\":{},\"seq\":{seq},\"total_ns\":{total_ns}",
                        util::json_str(kind.label())
                    ));
                }
                FlightEventKind::Stall {
                    kind,
                    seq,
                    waited_ns,
                } => {
                    out.push_str(&format!(
                        "\"type\":\"stall\",\"kind\":{},\"seq\":{seq},\"waited_ns\":{waited_ns}",
                        util::json_str(kind.label())
                    ));
                }
                FlightEventKind::Telemetry { seq, absolute } => {
                    out.push_str(&format!(
                        "\"type\":\"telemetry\",\"seq\":{seq},\"absolute\":{absolute}"
                    ));
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let f = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            f.record(
                i * 10,
                0,
                FlightEventKind::Bus {
                    label: "gm_read_req",
                    to_pe: 1,
                    bytes: i,
                },
            );
        }
        let ev = f.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].t_ns, 20, "oldest two evicted");
        assert_eq!(ev[2].t_ns, 40);
    }

    #[test]
    fn disabled_recorder_is_noop() {
        let f = FlightRecorder::disabled();
        assert!(!f.enabled());
        f.record(
            1,
            0,
            FlightEventKind::Telemetry {
                seq: 1,
                absolute: false,
            },
        );
        assert!(f.is_empty());
        assert_eq!(f.to_jsonl(), "");
    }

    #[test]
    fn traced_events_carry_causal_ids_in_jsonl() {
        let f = FlightRecorder::with_capacity(4);
        f.record_traced(
            100,
            1,
            0xabc,
            0xdef,
            FlightEventKind::Stall {
                kind: SpanKind::GmRead,
                seq: 7,
                waited_ns: 90,
            },
        );
        f.record(
            200,
            1,
            FlightEventKind::Telemetry {
                seq: 1,
                absolute: false,
            },
        );
        let dump = f.to_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("\"trace\":2748,\"span\":3567,"),
            "traced event carries ids: {}",
            lines[0]
        );
        assert!(
            !lines[1].contains("\"trace\""),
            "untraced event stays id-free: {}",
            lines[1]
        );
    }

    #[test]
    fn jsonl_covers_every_event_type() {
        let f = FlightRecorder::with_capacity(8);
        f.record(
            5,
            1,
            FlightEventKind::Bus {
                label: "telemetry",
                to_pe: 0,
                bytes: 33,
            },
        );
        f.span(&SpanRecord {
            kind: SpanKind::GmRead,
            pe: 2,
            seq: 9,
            open_ns: 100,
            close_ns: 450,
            wire_ns: 80,
            service_ns: 20,
            bytes: 64,
        });
        f.record(
            900,
            2,
            FlightEventKind::Stall {
                kind: SpanKind::GmWrite,
                seq: 11,
                waited_ns: 800,
            },
        );
        f.record(
            950,
            0,
            FlightEventKind::Telemetry {
                seq: 3,
                absolute: true,
            },
        );
        let dump = f.to_jsonl();
        assert_eq!(dump.lines().count(), 4);
        assert!(dump.contains("\"type\":\"bus\""));
        assert!(dump.contains("\"total_ns\":350"));
        assert!(dump.contains("\"type\":\"stall\""));
        assert!(dump.contains("\"absolute\":true"));
    }
}
