//! Cluster-wide observability for the DSE runtime.
//!
//! The paper evaluates its cluster environment with aggregate timings; to
//! reason about *why* a configuration behaves the way it does, this crate
//! adds the instrumentation layer the runtime crates hook into:
//!
//! * [`Registry`] — named counters, gauges and log-bucketed latency
//!   [`LogHistogram`]s keyed by PE / machine / subsystem,
//! * [`SpanTable`] — message-level request/response spans correlated by
//!   sequence number,
//! * [`BusSampler`] — per-interval bus utilization / collision / queue
//!   samples on the engine clock,
//! * exporters — Chrome trace-event JSON ([`chrome_trace_json`], loadable
//!   in Perfetto) and JSONL/CSV metric dumps
//!   ([`MetricsSnapshot::to_jsonl`] / [`MetricsSnapshot::to_csv`]),
//! * the telemetry plane — [`DeltaTracker`] / [`TelemetryDelta`] /
//!   [`ClusterAggregator`] ship per-PE metric deltas in-band over the DSE
//!   message layer and rebuild the cluster rollup at PE0,
//! * [`FlightRecorder`] — a fixed-size ring of recent bus/span events
//!   dumped post-mortem when the stall watchdog trips,
//! * the causal-trace plane — [`TraceRecorder`] / [`TraceSpanRec`] record
//!   per-PE causal spans (request → serve → redeem, barrier and lock
//!   rounds) whose ids travel in the wire trace-context extension; the
//!   `dse-trace` assembler rebuilds the cluster-wide trace from the
//!   per-PE JSONL streams.
//!
//! Everything is engine-neutral: values are plain `u64` nanoseconds,
//! whether they come from the simulator's virtual clock or the live
//! engine's wall clock. All exports iterate ordered containers so a
//! fixed-seed simulation produces byte-identical files.

#![warn(missing_docs)]

mod aggregate;
mod chrome;
mod flight;
mod hist;
mod interval;
mod jsonl;
mod registry;
mod span;
mod trace;
mod util;

pub use aggregate::{ClusterAggregator, DeltaTracker, HistDelta, NodeStatus, TelemetryDelta};
pub use chrome::{chrome_trace_json, ChromeTraceInput, PID_NET, PID_PROCS, PID_SPANS};
pub use flight::{FlightEvent, FlightEventKind, FlightRecorder};
pub use hist::LogHistogram;
pub use interval::{BusInterval, BusSampler, DEFAULT_BIN_NS};
pub use jsonl::{metrics_csv, metrics_jsonl};
pub use registry::{MetricKey, MetricsSnapshot, Registry};
pub use span::{OpenSpanInfo, SpanKind, SpanRecord, SpanTable};
pub use trace::{
    derived_span_id, parse_trace_jsonl, TraceRecorder, TraceRole, TraceSpanKind, TraceSpanRec,
    NO_PEER,
};
