//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the (small) API subset the workspace uses — `Mutex`, `RwLock`
//! and `Condvar` with non-poisoning guards — backed by `std::sync`.
//! Poisoning is deliberately swallowed: like real parking_lot, a panic
//! while holding a lock does not poison it for later acquirers.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex wrapping `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. Holds `Option` so [`Condvar::wait`] can take
/// the std guard out and put the re-acquired one back.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable paired with [`Mutex`], in parking_lot's
/// `wait(&mut guard)` style.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guarded lock and wait for a notification,
    /// re-acquiring before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock whose accessors return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock wrapping `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
