//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the API subset the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, implemented for primitive ranges,
//!   tuples (arity 2–6), [`Just`], and `any::<T>()`;
//! * [`collection::vec`] for variable-length vectors;
//! * the [`proptest!`], [`prop_oneof!`] and `prop_assert*` macros;
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics
//! with its case number and the per-test deterministic seed, which is
//! enough to reproduce (runs are fully deterministic per test name).

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction; same seed, same stream.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// FNV-1a over a test's name: the per-test deterministic base seed.
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A failed property-test assertion.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure carrying `reason`.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type property-test bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Box this strategy (type erasure for heterogeneous lists).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (unit - 0.5) * 2e6
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Box one `prop_oneof!` arm (a fn, not a cast, so the arm's value type
/// drives inference for the whole union).
pub fn boxed_arm<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Uniform choice between boxed alternatives (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generate vectors of `elem` values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Choose uniformly among listed strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::boxed_arm($strategy),)+
        ])
    };
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current test case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                l,
                r,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current test case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}` ({} == {})",
                l,
                r,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Define property tests: each `#[test] fn name(bindings in strategies)`
/// runs its body over deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let base = $crate::seed_of(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(
                        base.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    );
                    $(let $pat = $crate::Strategy::generate(&$strategy, &mut rng);)*
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{} (base seed {:#x}): {}",
                            stringify!($name), case, config.cases, base, e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),*) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 5usize..40, y in -3i64..3) {
            prop_assert!((5..40).contains(&x));
            prop_assert!((-3..3).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(any::<u8>(), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            Just(0u32),
            (1u32..5).prop_map(|x| x * 10),
        ]) {
            prop_assert!(v == 0 || (10..50).contains(&v));
        }

        #[test]
        fn early_ok_return_works(b in any::<bool>()) {
            if b {
                return Ok(());
            }
            prop_assert!(!b);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(super::seed_of("a"), super::seed_of("b"));
    }
}
