//! Offline stand-in for the `rand` crate.
//!
//! Provides the API subset the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over primitive
//! ranges — with a deterministic splitmix64 core. The stream differs from
//! upstream rand's; every consumer in this workspace only needs seeded
//! determinism, not stream compatibility.

use std::ops::Range;

/// Types that can seed themselves from a `u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface: `rng.gen_range(lo..hi)`.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform sample of a whole primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }
}

/// Types drawable uniformly from all 64 random bits.
pub trait Standard {
    /// Build a value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        bits as u32
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample<G: Rng>(self, rng: &mut G) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: Rng>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = rng.next_u64();
                let off = ((x as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Standard generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic splitmix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(5usize..40);
            assert!((5..40).contains(&v));
            let w = r.gen_range(-3i64..3);
            assert!((-3..3).contains(&w));
        }
    }
}
