//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! with a plain timing loop instead of criterion's statistics machinery.
//! Results print as `name: median-ish ns/iter` lines; good enough for the
//! relative comparisons the benches are read for.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement loop handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the calibrated iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level bench driver.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement: Duration::from_millis(500),
            warm_up: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark (builder-style, like criterion).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let label = name.to_string();
        run_bench(self, &label, f);
        self
    }

    fn budget_per_sample(&self) -> Duration {
        self.measurement / self.sample_size as u32
    }
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `new("encode", 64)` renders as `encode/64`.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoLabel, f: F) {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(self.c, &label, f);
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id.label);
        run_bench(self.c, &label, |b| f(b, input));
    }

    /// End the group (parity with criterion; nothing to flush here).
    pub fn finish(self) {}
}

/// Things accepted as a benchmark label.
pub trait IntoLabel {
    /// Render the label.
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, label: &str, mut f: F) {
    // Calibrate: run single iterations until the warm-up budget is spent.
    let mut one = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < c.warm_up {
        f(&mut one);
        per_iter = one.elapsed.max(Duration::from_nanos(1));
    }
    let budget = c.budget_per_sample();
    let iters = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
    let mut best = Duration::MAX;
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        best = best.min(b.elapsed / iters as u32);
    }
    println!(
        "bench {label}: {} ns/iter ({iters} iters/sample)",
        best.as_nanos()
    );
}

/// Declare a bench group: plain list or `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_times() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| b.iter(|| x * x));
        g.finish();
    }
}
