//! # dse — a portable cluster computing environment with single-system-image support
//!
//! A full reproduction, as a Rust library, of the system described in
//! *"Towards a Portable Cluster Computing Environment Supporting Single
//! System Image"* (Asazu, Apduhan, Arita; ICPP Workshops 1999): the **DSE**
//! (Distributed Supercomputing Environment) — a user-level, shared-memory
//! cluster runtime in its revised linked-library organization, together
//! with everything needed to rerun the paper's evaluation.
//!
//! ## Crate map
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`sim`] | `dse-sim` | deterministic direct-execution discrete-event engine |
//! | [`platform`] | `dse-platform` | Table 1 platform cost models + Table 2 cluster rules |
//! | [`msg`] | `dse-msg` | wire format of the message exchange mechanism |
//! | [`net`] | `dse-net` | CSMA/CD bus Ethernet, switched fabric, protocol stacks |
//! | [`kernel`] | `dse-kernel` | the parallel processing library (DSE kernel) |
//! | [`api`] | `dse-api` | the parallel API library (`DseProgram`, `DseCtx`) |
//! | [`ssi`] | `dse-ssi` | single-system-image services (process table, names, placement) |
//! | [`live`] | `dse-live` | the same API on real OS threads |
//! | [`apps`] | `dse-apps` | the paper's four workloads |
//!
//! ## Quickstart
//!
//! ```
//! use dse::prelude::*;
//!
//! // Run an SPMD program on a simulated 4-processor SparcStation cluster.
//! let result = DseProgram::new(Platform::sunos_sparc()).run(4, |ctx| {
//!     let table = GmArray::<f64>::alloc(ctx, 4, Distribution::Blocked);
//!     table.set(ctx, ctx.rank() as usize, ctx.rank() as f64 * 2.0);
//!     ctx.barrier();
//!     let all = table.read(ctx, 0, 4);
//!     assert_eq!(all, vec![0.0, 2.0, 4.0, 6.0]);
//! });
//! println!("simulated execution time: {}", result.elapsed);
//! ```
//!
//! Global-memory accesses can also be issued split-phase — start several
//! transfers, let the runtime coalesce and pipeline them, redeem the
//! handles when the data is needed:
//!
//! ```
//! use dse::prelude::*;
//!
//! DseProgram::new(Platform::sunos_sparc()).run(4, |ctx| {
//!     let table = GmArray::<u64>::alloc(ctx, 8, Distribution::Blocked);
//!     table.set(ctx, ctx.rank() as usize, 10 + ctx.rank() as u64);
//!     ctx.barrier();
//!     let handles: Vec<GmHandle> = (0..4)
//!         .map(|i| ctx.gm_read_nb(table.region(), i * 8, 8))
//!         .collect();
//!     for (i, h) in handles.into_iter().enumerate() {
//!         let bytes = ctx.gm_wait(h).expect("reads carry data");
//!         assert_eq!(u64::from_le_bytes(bytes.try_into().unwrap()), 10 + i as u64);
//!     }
//! });
//! ```

pub use dse_api as api;
pub use dse_apps as apps;
pub use dse_kernel as kernel;
pub use dse_live as live;
pub use dse_msg as msg;
pub use dse_net as net;
pub use dse_obs as obs;
pub use dse_platform as platform;
pub use dse_sim as sim;
pub use dse_ssi as ssi;

/// The names most programs need.
pub mod prelude {
    pub use dse_api::{
        collective, Distribution, DseConfig, DseCtx, DseProgram, GmArray, GmCounter, GmHandle,
        NetworkChoice, Organization, ParallelApi, Platform, RunResult, SimDuration, StallReport,
        TelemetryConfig, TelemetrySummary, Work,
    };
    pub use dse_live::{GmMode, LiveRunner, SchedulerKind, TransportKind};
    pub use dse_ssi::{render_top, top_rows, ClusterView, PlacementPolicy, Placer};
}
