//! `dse-run` — command-line front end to the DSE reproduction.
//!
//! Run any of the paper's workloads on any simulated platform and
//! configuration, and optionally print the execution-trace breakdown:
//!
//! ```sh
//! dse-run gauss   --platform sunos --procs 4 --n 600
//! dse-run dct     --platform linux --procs 8 --block 16 --trace
//! dse-run othello --platform aix   --procs 6 --depth 7
//! dse-run knights --platform sunos --procs 12 --jobs 16 --organization legacy
//! dse-run gauss-mp --procs 4 --n 400          # message-passing variant
//! ```
//!
//! Or run the same workload for real on the live engine, where each PE is
//! an OS thread and remote global-memory accesses are wire messages:
//!
//! ```sh
//! dse-run gauss --engine live --procs 4 --n 200
//! dse-run dct   --engine live --transport tcp --watch
//! ```

use std::sync::Mutex;
use std::time::Duration;

use dse::apps::{dct, gauss_seidel, gauss_seidel_mp, knights, matmul, othello};
use dse::live::{LiveCtx, LiveRunConfig, LiveRunResult, LiveRunner};
use dse::prelude::*;
use dse_sweep::build;
use dse_sweep::run::RunStatus;
use dse_trace::{analyze, gantt};

#[derive(Debug, Clone, PartialEq)]
struct Args {
    app: String,
    engine: String,
    transport: String,
    scheduler: String,
    platform: String,
    procs: usize,
    n: usize,
    block: usize,
    depth: u32,
    jobs: usize,
    organization: String,
    protocol: String,
    cache: bool,
    gm_mode: String,
    trace: bool,
    machines: usize,
    metrics_json: Option<String>,
    metrics_csv: Option<String>,
    trace_json: Option<String>,
    watch: bool,
    watch_ms: u64,
    watchdog_ms: u64,
    flight_json: Option<String>,
    fault_plan: Option<String>,
    trace_dir: Option<String>,
    critical_path: bool,
    /// Flags the user actually typed, for meaningless-combination checks
    /// (a default value is fine; an explicit contradiction is an error).
    explicit: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dse-run <gauss|gauss-mp|dct|othello|knights|matmul> [options]
  --engine sim|live            execution engine           (default sim)
  --transport channel|tcp|uds  live engine wire           (default channel)
  --scheduler threads|tasks    live engine kernel driver: one OS thread
                               per PE, or poll-driven tasks on a worker
                               pool (for many-PE runs)    (default threads)
  --platform sunos|aix|linux   simulated platform        (default sunos)
  --procs N                    processors 1..12           (default 4)
  --machines N                 physical machines          (default 6)
  --n N                        Gauss-Seidel dimension     (default 400)
  --block B                    DCT block size             (default 8)
  --depth D                    Othello search depth       (default 5)
  --jobs J                     Knight's-Tour job count    (default 16)
  --organization linked|legacy software organization     (default linked)
  --protocol tcp|udp|raw       protocol stack             (default tcp)
  --cache                      enable the GM cache (both engines)
  --gm-mode wi|rc              cache coherence: write-invalidate or
                               release consistency        (default wi)
  --trace                      print the execution-time breakdown
  --metrics-json PATH          write metrics as JSON Lines
  --metrics-csv PATH           write metrics as CSV
  --trace-json PATH            write a Chrome trace (load in Perfetto)
  --watch                      print the live cluster top view each epoch
  --watch-ms MS                telemetry emission interval    (default 50)
  --watchdog-ms MS             GM stall watchdog deadline     (default 250)
  --flight-json PATH           write the flight-recorder ring (JSONL)
  --fault-plan SPEC            inject deterministic transport faults (live engine)
                               e.g. seed=7,drop=10,dup=5,corrupt=3,delay=20:2,disconnect=2:40
  --trace-dir DIR              live engine: record causal spans, write per-PE streams,
                               the assembled cluster trace, blame table and critical path
  --critical-path              live engine: print the blame table and critical path

or run one cell of a sweep scenario spec (see dse-sweep):
  dse-run --scenario FILE            list the spec's cells
  dse-run --scenario FILE --cell ID  run every seed of that cell"
    );
    std::process::exit(2)
}

/// Parse a full argument vector (without the program name). Returns a
/// descriptive error for unknown flags, missing values, or bad numbers so
/// the caller — and the unit tests — can check rejection behaviour.
fn parse_from(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        app: String::new(),
        engine: "sim".into(),
        transport: "channel".into(),
        scheduler: "threads".into(),
        platform: "sunos".into(),
        procs: 4,
        n: 400,
        block: 8,
        depth: 5,
        jobs: 16,
        organization: "linked".into(),
        protocol: "tcp".into(),
        cache: false,
        gm_mode: "wi".into(),
        trace: false,
        machines: 6,
        metrics_json: None,
        metrics_csv: None,
        trace_json: None,
        watch: false,
        watch_ms: 50,
        watchdog_ms: 250,
        flight_json: None,
        fault_plan: None,
        trace_dir: None,
        critical_path: false,
        explicit: Vec::new(),
    };
    let mut it = argv.iter();
    args.app = it.next().ok_or("missing application name")?.clone();
    if args.app == "--help" || args.app == "-h" {
        return Err("help".into());
    }
    while let Some(flag) = it.next() {
        args.explicit.push(flag.clone());
        let mut val = || -> Result<String, String> {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        let num = |flag: &str, v: String| -> Result<usize, String> {
            v.parse()
                .map_err(|_| format!("flag {flag}: '{v}' is not a number"))
        };
        match flag.as_str() {
            "--engine" => args.engine = val()?,
            "--transport" => args.transport = val()?,
            "--scheduler" => args.scheduler = val()?,
            "--platform" => args.platform = val()?,
            "--procs" => args.procs = num(flag, val()?)?,
            "--machines" => args.machines = num(flag, val()?)?,
            "--n" => args.n = num(flag, val()?)?,
            "--block" => args.block = num(flag, val()?)?,
            "--depth" => args.depth = num(flag, val()?)? as u32,
            "--jobs" => args.jobs = num(flag, val()?)?,
            "--organization" => args.organization = val()?,
            "--protocol" => args.protocol = val()?,
            "--cache" => args.cache = true,
            "--gm-mode" => args.gm_mode = val()?,
            "--trace" => args.trace = true,
            "--metrics-json" => args.metrics_json = Some(val()?),
            "--metrics-csv" => args.metrics_csv = Some(val()?),
            "--trace-json" => args.trace_json = Some(val()?),
            "--watch" => args.watch = true,
            "--watch-ms" => args.watch_ms = num(flag, val()?)? as u64,
            "--watchdog-ms" => args.watchdog_ms = num(flag, val()?)? as u64,
            "--flight-json" => args.flight_json = Some(val()?),
            "--fault-plan" => args.fault_plan = Some(val()?),
            "--trace-dir" => args.trace_dir = Some(val()?),
            "--critical-path" => args.critical_path = true,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Reject argument combinations that silently mean nothing. Defaults are
/// always fine; only flags the user explicitly typed can contradict the
/// chosen engine.
fn validate_engine_combos(args: &Args) -> Result<(), String> {
    match args.engine.as_str() {
        "sim" | "live" => {}
        other => return Err(format!("--engine: '{other}' is not sim or live")),
    }
    build::transport_kind(&args.transport).map_err(|e| format!("--{e}"))?;
    let explicit = |f: &str| args.explicit.iter().any(|e| e == f);
    if args.engine == "sim" && explicit("--transport") {
        return Err(
            "--transport chooses the live engine's wire; it has no effect with --engine sim \
             (add --engine live)"
                .into(),
        );
    }
    build::check_scheduler(&args.scheduler).map_err(|e| format!("--{e}"))?;
    if args.engine == "sim" && explicit("--scheduler") {
        return Err(
            "--scheduler picks the live engine's kernel driver; it has no effect with \
             --engine sim (add --engine live)"
                .into(),
        );
    }
    if args.engine == "sim" && explicit("--fault-plan") {
        return Err(
            "--fault-plan injects faults into the live engine's transport; it has no effect \
             with --engine sim (add --engine live)"
                .into(),
        );
    }
    if let Some(spec) = &args.fault_plan {
        build::check_fault_plan(spec).map_err(|e| format!("--fault-plan: {e}"))?;
    }
    if build::check_gm_mode(&args.gm_mode).is_err() {
        return Err(format!("--gm-mode: '{}' is not wi or rc", args.gm_mode));
    }
    if args.gm_mode == "rc" && !args.cache {
        return Err(
            "--gm-mode rc relaxes the GM cache's coherence protocol; it has no effect \
             without --cache"
                .into(),
        );
    }
    if args.engine == "sim" {
        for f in ["--trace-dir", "--critical-path"] {
            if explicit(f) {
                return Err(format!(
                    "{f} drives the live engine's causal tracing; the simulator's breakdown \
                     is --trace / --trace-json (add --engine live)"
                ));
            }
        }
    }
    if args.engine == "live" {
        if args.app == "gauss-mp" {
            return Err(
                "gauss-mp is the explicit message-passing variant built on the simulator's \
                 user-message mailboxes; it does not run on the live engine (use gauss)"
                    .into(),
            );
        }
        // Everything that parameterizes the simulated 1999 cluster model is
        // meaningless when the program runs for real on host threads.
        const SIM_ONLY: &[&str] = &[
            "--platform",
            "--machines",
            "--organization",
            "--protocol",
            "--trace",
            "--trace-json",
            "--watchdog-ms",
        ];
        for f in SIM_ONLY {
            if explicit(f) {
                return Err(format!(
                    "{f} configures the simulated cluster model and has no meaning with \
                     --engine live"
                ));
            }
        }
        if args.procs == 0 {
            return Err("--procs: the live engine needs at least one processor".into());
        }
    }
    Ok(())
}

/// Probe every requested output path for writability *before* the run
/// (shared with `dse-sweep`; see [`build::validate_out_paths`]).
fn validate_out_paths(args: &Args) -> Result<(), String> {
    let outs = [
        (&args.metrics_json, "metrics (JSONL)"),
        (&args.metrics_csv, "metrics (CSV)"),
        (&args.trace_json, "Chrome trace"),
        (&args.flight_json, "flight recorder"),
    ];
    build::validate_out_paths(
        outs.iter()
            .filter_map(|(path, what)| path.as_deref().map(|p| (p, *what))),
    )
}

fn parse() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    parse_from(&argv).unwrap_or_else(|err| {
        if err != "help" {
            eprintln!("{err}");
        }
        usage()
    })
}

/// `dse-run --scenario FILE [--cell ID]`: run one named cell of a sweep
/// spec in-process — every seed of the cell, sequentially — printing the
/// same per-run rows `dse-sweep` collects. Without `--cell`, list the
/// spec's cells. Exits 1 if any run fails.
fn run_scenario_cli(argv: &[String]) -> ! {
    let mut file: Option<String> = None;
    let mut cell: Option<String> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--scenario", Some(v)) => file = Some(v.clone()),
            ("--cell", Some(v)) => cell = Some(v.clone()),
            _ => {
                eprintln!("usage: dse-run --scenario FILE [--cell ID]");
                std::process::exit(2);
            }
        }
    }
    let file = file.expect("dispatched on --scenario");
    let src = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("cannot read {file}: {e}");
        std::process::exit(2);
    });
    let spec = dse_sweep::parse_spec(&src).unwrap_or_else(|e| {
        eprintln!("{file}: {e}");
        std::process::exit(2);
    });
    let runs = dse_sweep::expand(&spec);
    let Some(cell) = cell else {
        let mut cells: Vec<String> = runs.iter().map(|r| r.cell_id()).collect();
        cells.dedup();
        for c in &cells {
            println!("{c}");
        }
        println!("{} cells, {} runs", cells.len(), runs.len());
        std::process::exit(0);
    };
    let selected: Vec<_> = runs.iter().filter(|r| r.cell_id() == cell).collect();
    if selected.is_empty() {
        eprintln!("no cell '{cell}' in {file} (try --scenario {file} to list)");
        std::process::exit(2);
    }
    let mut failed = false;
    for rs in selected {
        let rec = dse_sweep::execute_run(rs);
        println!("{}", rec.to_json_line());
        failed |= rec.status != RunStatus::Ok;
    }
    std::process::exit(i32::from(failed))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("--scenario") {
        run_scenario_cli(&argv);
    }
    let args = parse();
    if let Err(e) = validate_engine_combos(&args) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    if let Err(e) = validate_out_paths(&args) {
        eprintln!("{e}");
        std::process::exit(1);
    }
    if args.engine == "live" {
        run_live_cli(&args);
    } else {
        run_sim_cli(&args);
    }
}

/// Run the selected workload on the live engine: real threads, the chosen
/// transport carrying every remote GM access, results printed exactly like
/// the simulator's so the two engines are directly comparable.
fn run_live_cli(args: &Args) {
    let mut cfg = build::build_live(
        &args.transport,
        args.fault_plan.as_deref(),
        None,
        args.cache,
        &args.gm_mode,
        &args.scheduler,
    )
    .expect("transport, fault plan, gm mode and scheduler validated at startup");
    cfg.tracing = args.trace_dir.is_some() || args.critical_path;
    println!(
        "# {} on the live engine ({} transport, {} scheduler), {} processors",
        args.app, args.transport, args.scheduler, args.procs
    );
    if let Some(spec) = &args.fault_plan {
        println!("# fault plan: {spec}");
    }
    let run = match args.app.as_str() {
        "gauss" => {
            let params = gauss_seidel::GaussSeidelParams::paper(args.n);
            let (run, sol) = live_app(args, &cfg, |ctx| gauss_seidel::body(ctx, &params));
            println!(
                "solved N={} in {} sweeps, final delta {:.2e}",
                args.n, sol.iters, sol.delta
            );
            run
        }
        "dct" => {
            let params = dct::DctParams::paper(args.block);
            let (run, out) = live_app(args, &cfg, |ctx| dct::body(ctx, &params));
            println!(
                "compressed {}x{} image, {} coefficients kept",
                params.size,
                params.size,
                out.coeffs.len()
            );
            run
        }
        "othello" => {
            let params = othello::OthelloParams::paper(args.depth);
            let (run, (mv, score)) = live_app(args, &cfg, |ctx| othello::body(ctx, &params));
            println!(
                "depth {}: best move {}{} score {:+}",
                args.depth,
                (b'a' + mv % 8) as char,
                mv / 8 + 1,
                score
            );
            run
        }
        "matmul" => {
            let params = matmul::MatmulParams::single(args.n.min(256));
            let (run, c) = live_app(args, &cfg, |ctx| matmul::body(ctx, &params));
            println!("multiplied {0}x{0} matrices, C[0]={1:.4}", params.n, c[0]);
            run
        }
        "knights" => {
            let params = knights::KnightsParams::paper(args.jobs);
            let (run, count) = live_app(args, &cfg, |ctx| knights::body(ctx, &params));
            println!("counted {count} tours ({} jobs)", args.jobs);
            run
        }
        _ => usage(),
    };
    println!(
        "wall time: {:?}   gm request messages: {}   requests served: {}",
        run.elapsed,
        run.metrics
            .counter_sum_over_pes("kernel", "gm_request_msgs"),
        run.metrics
            .counter_sum_over_pes("kernel", "requests_served"),
    );
    if args.cache {
        let c = |name: &str| run.metrics.counter_sum_over_pes("kernel", name);
        println!(
            "directory: {} hits / {} misses / {} leases / {} invals",
            c("dir_hits"),
            c("dir_misses"),
            c("dir_leases"),
            c("dir_invals"),
        );
        if args.gm_mode == "rc" {
            println!(
                "rc: {} deferred invalidations / {} acquires",
                c("rc_deferred_invals"),
                c("rc_acquires"),
            );
        }
    }
    let write = |path: &str, what: &str, data: String| {
        if let Err(e) = std::fs::write(path, data) {
            eprintln!("cannot write {what} to {path}: {e}");
            std::process::exit(1);
        }
        println!("{what} written to {path}");
    };
    if let Some(path) = &args.metrics_json {
        write(path, "metrics (JSONL)", run.metrics.to_jsonl());
    }
    if let Some(path) = &args.metrics_csv {
        write(path, "metrics (CSV)", run.metrics.to_csv());
    }
    if let Some(path) = &args.flight_json {
        write(path, "flight recorder", run.flight_jsonl.clone());
    }
    if cfg.tracing {
        report_causal_trace(args, &run);
    }
}

/// Assemble the run's causal trace, print the blame table (and critical
/// path under `--critical-path`), and populate `--trace-dir` with the
/// per-PE streams plus every derived artifact. The canonical files are
/// what the CI determinism smoke diffs across two runs.
fn report_causal_trace(args: &Args, run: &LiveRunResult) {
    let t = dse_trace::assemble(&run.trace_spans);
    println!(
        "causal trace: {} spans, {}/{} gm chains linked ({:.1}%)",
        t.spans.len(),
        t.links.gm_linked,
        t.links.gm_reqs,
        t.links.gm_link_ratio() * 100.0
    );
    let blame = dse_trace::blame(&t);
    print!("{}", blame.render());
    let path = dse_trace::critical_path(&t);
    if args.critical_path {
        print!("{}", path.render(40));
    }
    let Some(dir) = &args.trace_dir else {
        return;
    };
    let dir = std::path::Path::new(dir);
    if let Err(e) = dse_trace::write_trace_dir(dir, &run.trace_spans) {
        eprintln!("cannot write trace streams: {e}");
        std::process::exit(1);
    }
    let canonical = t.canonical();
    let outs: [(&str, String); 5] = [
        ("cluster.trace.json", dse_trace::chrome_flow_json(&t)),
        ("blame.txt", blame.render()),
        ("critical_path.txt", path.render(usize::MAX)),
        ("canonical.trace.jsonl", canonical.to_jsonl()),
        (
            "canonical.critical_path.txt",
            dse_trace::critical_path(&canonical).render(usize::MAX),
        ),
    ];
    for (name, data) in outs {
        let p = dir.join(name);
        if let Err(e) = std::fs::write(&p, data) {
            eprintln!("cannot write {}: {e}", p.display());
            std::process::exit(1);
        }
    }
    println!(
        "trace streams + assembly ({} PEs) written to {}",
        run.trace_spans.len(),
        dir.display()
    );
}

/// Execute one SPMD body on the live engine (watched if `--watch`) and
/// return the run alongside rank 0's result. An aborted run prints the
/// per-PE failure report, writes the flight-recorder post-mortem if
/// `--flight-json` asked for one, and exits with status 1.
fn live_app<T: Send>(
    args: &Args,
    cfg: &LiveRunConfig,
    body: impl Fn(&mut LiveCtx) -> Option<T> + Send + Sync,
) -> (LiveRunResult, T) {
    let slot: Mutex<Option<T>> = Mutex::new(None);
    let capture = |ctx: &mut LiveCtx| {
        if let Some(v) = body(ctx) {
            *slot.lock().unwrap() = Some(v);
        }
    };
    let hook = |agg: &dse::obs::ClusterAggregator, now_ns: u64| {
        println!("-- t={:.1}ms", now_ns as f64 / 1e6);
        print!("{}", dse::ssi::render_top(agg, now_ns));
    };
    let mut runner = LiveRunner::new(args.procs).config(cfg.clone());
    if args.watch {
        runner = runner.watch(Duration::from_millis(args.watch_ms), &hook);
    }
    let run = runner.try_run(capture);
    let run = run.unwrap_or_else(|err| {
        eprint!("{}", err.report());
        if let Some(path) = &args.flight_json {
            match std::fs::write(path, &err.flight_jsonl) {
                Ok(()) => eprintln!("flight recorder post-mortem written to {path}"),
                Err(e) => eprintln!("cannot write flight recorder to {path}: {e}"),
            }
        }
        std::process::exit(1);
    });
    let result = slot.into_inner().unwrap().expect("rank 0 result");
    (run, result)
}

fn run_sim_cli(args: &Args) {
    let settings = build::SimSettings {
        platform: args.platform.clone(),
        organization: args.organization.clone(),
        protocol: args.protocol.clone(),
        cache: args.cache,
        gm_mode: args.gm_mode.clone(),
        machines: args.machines,
        // A Chrome trace needs the per-process event timeline, so
        // --trace-json implies tracing even without the printed breakdown.
        tracing: args.trace || args.trace_json.is_some(),
        // --watch and --flight-json both need the in-band telemetry plane.
        telemetry_ms: (args.watch || args.flight_json.is_some())
            .then_some((args.watch_ms, args.watchdog_ms)),
        seed: None,
        gm_window: 0,
    };
    let (platform, config) = build::build_sim(&settings).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage()
    });
    let mut program = DseProgram::new(platform.clone()).with_config(config);
    if args.watch {
        program = program.with_epoch_hook(|agg, now_ns| {
            println!("-- t={:.1}ms", now_ns as f64 / 1e6);
            print!("{}", dse::ssi::render_top(agg, now_ns));
        });
    }

    println!(
        "# {} on {} ({}), {} processors / {} machines",
        args.app, platform.os, platform.machine, args.procs, args.machines
    );
    let run = match args.app.as_str() {
        "gauss" => {
            let params = gauss_seidel::GaussSeidelParams::paper(args.n);
            let (run, sol) = gauss_seidel::solve_parallel(&program, args.procs, params);
            println!(
                "solved N={} in {} sweeps, final delta {:.2e}",
                args.n, sol.iters, sol.delta
            );
            run
        }
        "gauss-mp" => {
            let params = gauss_seidel::GaussSeidelParams::paper(args.n);
            let (run, sol) = gauss_seidel_mp::solve_parallel_mp(&program, args.procs, params);
            println!(
                "solved N={} (message passing) in {} sweeps, final delta {:.2e}",
                args.n, sol.iters, sol.delta
            );
            run
        }
        "dct" => {
            let params = dct::DctParams::paper(args.block);
            let (run, out) = dct::compress_parallel(&program, args.procs, params);
            println!(
                "compressed {}x{} image, {} coefficients kept",
                params.size,
                params.size,
                out.coeffs.len()
            );
            run
        }
        "othello" => {
            let params = othello::OthelloParams::paper(args.depth);
            let (run, (mv, score)) = othello::search_parallel(&program, args.procs, params);
            println!(
                "depth {}: best move {}{} score {:+}",
                args.depth,
                (b'a' + mv % 8) as char,
                mv / 8 + 1,
                score
            );
            run
        }
        "matmul" => {
            let params = matmul::MatmulParams::single(args.n.min(256));
            let (run, c) = matmul::multiply_parallel(&program, args.procs, params);
            println!("multiplied {0}x{0} matrices, C[0]={1:.4}", params.n, c[0]);
            run
        }
        "knights" => {
            let params = knights::KnightsParams::paper(args.jobs);
            let (run, count) = knights::count_parallel(&program, args.procs, params);
            println!("counted {count} tours ({} jobs)", args.jobs);
            run
        }
        _ => usage(),
    };

    println!(
        "execution time: {}   messages: {}   wire bytes: {}   collisions: {}",
        run.elapsed, run.stats.messages, run.net_wire_bytes, run.net_collisions
    );
    if args.cache {
        println!(
            "cache: {} hits / {} misses / {} invalidations",
            run.stats.cache_hits, run.stats.cache_misses, run.stats.cache_invalidations
        );
        println!(
            "directory: {} hits / {} misses / {} leases / {} invals",
            run.stats.dir_hits, run.stats.dir_misses, run.stats.dir_leases, run.stats.dir_invals
        );
        if args.gm_mode == "rc" {
            println!(
                "rc: {} deferred invalidations / {} acquires",
                run.stats.rc_deferred_invals, run.stats.rc_acquires
            );
        }
    }
    if args.trace {
        let trace = run.report.trace.as_ref().expect("tracing enabled");
        let analysis = analyze(trace, run.report.end_time);
        println!();
        print!("{}", analysis.render());
        println!("{}", gantt(trace, run.report.end_time, 72));
    }
    let write = |path: &str, what: &str, data: String| {
        if let Err(e) = std::fs::write(path, data) {
            eprintln!("cannot write {what} to {path}: {e}");
            std::process::exit(1);
        }
        println!("{what} written to {path}");
    };
    if let Some(path) = &args.metrics_json {
        write(path, "metrics (JSONL)", run.metrics_jsonl());
    }
    if let Some(path) = &args.metrics_csv {
        write(path, "metrics (CSV)", run.metrics_csv());
    }
    if let Some(path) = &args.trace_json {
        write(path, "Chrome trace", run.chrome_trace_json());
    }
    if let Some(tel) = &run.telemetry {
        for s in &tel.stalls {
            println!(
                "STALL: {:?} from pe {} seq {} waited {:.1}ms past the {}ms deadline",
                s.kind,
                s.pe,
                s.seq,
                s.waited_ns() as f64 / 1e6,
                args.watchdog_ms
            );
        }
        if let Some(path) = &args.flight_json {
            write(
                path,
                "flight recorder",
                tel.flight_jsonl.clone().unwrap_or_default(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_fill_in() {
        let a = parse_from(&argv("gauss")).unwrap();
        assert_eq!(a.app, "gauss");
        assert_eq!(a.platform, "sunos");
        assert_eq!(a.procs, 4);
        assert_eq!(a.machines, 6);
        assert!(!a.cache && !a.trace);
        assert_eq!(a.metrics_json, None);
        assert_eq!(a.trace_json, None);
    }

    #[test]
    fn all_flags_parse() {
        let a = parse_from(&argv(
            "dct --platform linux --procs 8 --machines 4 --n 128 --block 16              --depth 7 --jobs 32 --organization legacy --protocol udp --cache --trace",
        ))
        .unwrap();
        assert_eq!(a.platform, "linux");
        assert_eq!(a.procs, 8);
        assert_eq!(a.machines, 4);
        assert_eq!(a.n, 128);
        assert_eq!(a.block, 16);
        assert_eq!(a.depth, 7);
        assert_eq!(a.jobs, 32);
        assert_eq!(a.organization, "legacy");
        assert_eq!(a.protocol, "udp");
        assert!(a.cache && a.trace);
    }

    #[test]
    fn observability_flags_parse() {
        let a = parse_from(&argv(
            "gauss --metrics-json m.jsonl --metrics-csv m.csv --trace-json t.json",
        ))
        .unwrap();
        assert_eq!(a.metrics_json.as_deref(), Some("m.jsonl"));
        assert_eq!(a.metrics_csv.as_deref(), Some("m.csv"));
        assert_eq!(a.trace_json.as_deref(), Some("t.json"));
    }

    #[test]
    fn watch_flags_parse_with_defaults() {
        let a = parse_from(&argv("gauss")).unwrap();
        assert!(!a.watch);
        assert_eq!(a.watch_ms, 50);
        assert_eq!(a.watchdog_ms, 250);
        assert_eq!(a.flight_json, None);
        let a = parse_from(&argv(
            "gauss --watch --watch-ms 5 --watchdog-ms 40 --flight-json f.jsonl",
        ))
        .unwrap();
        assert!(a.watch);
        assert_eq!(a.watch_ms, 5);
        assert_eq!(a.watchdog_ms, 40);
        assert_eq!(a.flight_json.as_deref(), Some("f.jsonl"));
    }

    #[test]
    fn out_path_validation_probes_before_the_run() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("target")
            .join("dse-run-validate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut a = parse_from(&argv("gauss")).unwrap();
        assert!(validate_out_paths(&a).is_ok(), "no paths: nothing to probe");
        a.metrics_json = Some(dir.join("m.jsonl").to_string_lossy().into_owned());
        assert!(validate_out_paths(&a).is_ok());
        // The probe must not clobber existing content before the run.
        let existing = dir.join("keep.csv");
        std::fs::write(&existing, "old").unwrap();
        a.metrics_csv = Some(existing.to_string_lossy().into_owned());
        assert!(validate_out_paths(&a).is_ok());
        assert_eq!(std::fs::read_to_string(&existing).unwrap(), "old");
        // A missing parent directory is rejected with a clear message.
        a.flight_json = Some(
            dir.join("no-such-dir")
                .join("f.jsonl")
                .to_string_lossy()
                .into_owned(),
        );
        let err = validate_out_paths(&a).unwrap_err();
        assert!(err.contains("cannot write flight recorder"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engine_and_transport_flags_parse() {
        let a = parse_from(&argv("gauss")).unwrap();
        assert_eq!(a.engine, "sim");
        assert_eq!(a.transport, "channel");
        let a = parse_from(&argv("gauss --engine live --transport tcp")).unwrap();
        assert_eq!(a.engine, "live");
        assert_eq!(a.transport, "tcp");
        assert!(validate_engine_combos(&a).is_ok());
    }

    #[test]
    fn bad_engine_or_transport_rejected() {
        let a = parse_from(&argv("gauss --engine warp")).unwrap();
        let err = validate_engine_combos(&a).unwrap_err();
        assert!(err.contains("not sim or live"), "{err}");
        let a = parse_from(&argv("gauss --engine live --transport pigeon")).unwrap();
        let err = validate_engine_combos(&a).unwrap_err();
        assert!(err.contains("not channel, tcp or uds"), "{err}");
    }

    #[test]
    fn transport_with_sim_engine_rejected() {
        let a = parse_from(&argv("gauss --transport tcp")).unwrap();
        let err = validate_engine_combos(&a).unwrap_err();
        assert!(err.contains("no effect with --engine sim"), "{err}");
        // The default transport value is fine — only the explicit flag errs.
        let a = parse_from(&argv("gauss")).unwrap();
        assert!(validate_engine_combos(&a).is_ok());
    }

    #[test]
    fn sim_model_flags_with_live_engine_rejected() {
        for flags in [
            "--platform linux",
            "--machines 4",
            "--organization legacy",
            "--protocol udp",
            "--trace",
            "--trace-json t.json",
            "--watchdog-ms 10",
        ] {
            let a = parse_from(&argv(&format!("gauss --engine live {flags}"))).unwrap();
            let err = validate_engine_combos(&a).unwrap_err();
            assert!(
                err.contains("no meaning with --engine live"),
                "{flags}: {err}"
            );
        }
        // Observability outputs, the watch view, the flight recorder and the
        // GM cache all work on the live engine.
        let a = parse_from(&argv(
            "gauss --engine live --watch --watch-ms 10 --metrics-json m.jsonl --metrics-csv m.csv \
             --flight-json f.jsonl --cache",
        ))
        .unwrap();
        assert!(validate_engine_combos(&a).is_ok());
    }

    #[test]
    fn scheduler_flag_parses_and_requires_live_engine() {
        let a = parse_from(&argv("gauss")).unwrap();
        assert_eq!(a.scheduler, "threads");
        let a = parse_from(&argv("gauss --engine live --scheduler tasks")).unwrap();
        assert_eq!(a.scheduler, "tasks");
        assert!(validate_engine_combos(&a).is_ok());
        let a = parse_from(&argv("gauss --scheduler tasks")).unwrap();
        let err = validate_engine_combos(&a).unwrap_err();
        assert!(err.contains("no effect with --engine sim"), "{err}");
        let a = parse_from(&argv("gauss --engine live --scheduler fibers")).unwrap();
        let err = validate_engine_combos(&a).unwrap_err();
        assert!(err.contains("not threads or tasks"), "{err}");
    }

    #[test]
    fn gm_mode_parses_and_validates() {
        let a = parse_from(&argv("gauss")).unwrap();
        assert_eq!(a.gm_mode, "wi");
        for engine in ["sim", "live"] {
            let a = parse_from(&argv(&format!(
                "gauss --engine {engine} --cache --gm-mode rc"
            )))
            .unwrap();
            assert_eq!(a.gm_mode, "rc");
            assert!(validate_engine_combos(&a).is_ok(), "{engine}");
        }
        let a = parse_from(&argv("gauss --cache --gm-mode mesi")).unwrap();
        let err = validate_engine_combos(&a).unwrap_err();
        assert!(err.contains("not wi or rc"), "{err}");
    }

    #[test]
    fn gm_mode_rc_without_cache_rejected() {
        let a = parse_from(&argv("gauss --gm-mode rc")).unwrap();
        let err = validate_engine_combos(&a).unwrap_err();
        assert!(err.contains("without --cache"), "{err}");
        // wi is the default protocol; stating it without the cache is fine.
        let a = parse_from(&argv("gauss --gm-mode wi")).unwrap();
        assert!(validate_engine_combos(&a).is_ok());
    }

    #[test]
    fn fault_plan_parses_and_requires_live_engine() {
        let a = parse_from(&argv("gauss --engine live --fault-plan seed=7,drop=10")).unwrap();
        assert_eq!(a.fault_plan.as_deref(), Some("seed=7,drop=10"));
        assert!(validate_engine_combos(&a).is_ok());
        let a = parse_from(&argv("gauss --fault-plan seed=7,drop=10")).unwrap();
        let err = validate_engine_combos(&a).unwrap_err();
        assert!(err.contains("no effect with --engine sim"), "{err}");
    }

    #[test]
    fn bad_fault_plan_spec_rejected() {
        let a = parse_from(&argv("gauss --engine live --fault-plan frob=1")).unwrap();
        let err = validate_engine_combos(&a).unwrap_err();
        assert!(err.starts_with("--fault-plan:"), "{err}");
    }

    #[test]
    fn trace_dir_flags_parse_and_require_live_engine() {
        let a = parse_from(&argv(
            "gauss --engine live --trace-dir traces/g --critical-path",
        ))
        .unwrap();
        assert_eq!(a.trace_dir.as_deref(), Some("traces/g"));
        assert!(a.critical_path);
        assert!(validate_engine_combos(&a).is_ok());
        // --critical-path alone also works (prints without writing).
        let a = parse_from(&argv("gauss --engine live --critical-path")).unwrap();
        assert!(validate_engine_combos(&a).is_ok());
        for flags in ["--trace-dir traces/g", "--critical-path"] {
            let a = parse_from(&argv(&format!("gauss {flags}"))).unwrap();
            let err = validate_engine_combos(&a).unwrap_err();
            assert!(err.contains("add --engine live"), "{flags}: {err}");
        }
    }

    #[test]
    fn gauss_mp_on_live_engine_rejected() {
        let a = parse_from(&argv("gauss-mp --engine live")).unwrap();
        let err = validate_engine_combos(&a).unwrap_err();
        assert!(err.contains("does not run on the live engine"), "{err}");
        let a = parse_from(&argv("gauss-mp")).unwrap();
        assert!(validate_engine_combos(&a).is_ok());
    }

    #[test]
    fn unknown_flag_rejected() {
        let err = parse_from(&argv("gauss --frobnicate")).unwrap_err();
        assert!(err.contains("unknown flag --frobnicate"), "{err}");
    }

    #[test]
    fn missing_value_rejected() {
        let err = parse_from(&argv("gauss --metrics-json")).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
    }

    #[test]
    fn bad_number_rejected() {
        let err = parse_from(&argv("gauss --procs many")).unwrap_err();
        assert!(err.contains("not a number"), "{err}");
    }

    #[test]
    fn missing_app_rejected() {
        let err = parse_from(&[]).unwrap_err();
        assert!(err.contains("missing application"), "{err}");
    }
}
