//! `dse-run` — command-line front end to the DSE reproduction.
//!
//! Run any of the paper's workloads on any simulated platform and
//! configuration, and optionally print the execution-trace breakdown:
//!
//! ```sh
//! dse-run gauss   --platform sunos --procs 4 --n 600
//! dse-run dct     --platform linux --procs 8 --block 16 --trace
//! dse-run othello --platform aix   --procs 6 --depth 7
//! dse-run knights --platform sunos --procs 12 --jobs 16 --organization legacy
//! dse-run gauss-mp --procs 4 --n 400          # message-passing variant
//! ```

use dse::apps::{dct, gauss_seidel, gauss_seidel_mp, knights, matmul, othello};
use dse::net::Protocol;
use dse::prelude::*;
use dse_trace::{analyze, gantt};

#[derive(Debug, Clone, PartialEq)]
struct Args {
    app: String,
    platform: String,
    procs: usize,
    n: usize,
    block: usize,
    depth: u32,
    jobs: usize,
    organization: String,
    protocol: String,
    cache: bool,
    trace: bool,
    machines: usize,
    metrics_json: Option<String>,
    metrics_csv: Option<String>,
    trace_json: Option<String>,
    watch: bool,
    watch_ms: u64,
    watchdog_ms: u64,
    flight_json: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dse-run <gauss|gauss-mp|dct|othello|knights|matmul> [options]
  --platform sunos|aix|linux   simulated platform        (default sunos)
  --procs N                    processors 1..12           (default 4)
  --machines N                 physical machines          (default 6)
  --n N                        Gauss-Seidel dimension     (default 400)
  --block B                    DCT block size             (default 8)
  --depth D                    Othello search depth       (default 5)
  --jobs J                     Knight's-Tour job count    (default 16)
  --organization linked|legacy software organization     (default linked)
  --protocol tcp|udp|raw       protocol stack             (default tcp)
  --cache                      enable the GM cache
  --trace                      print the execution-time breakdown
  --metrics-json PATH          write metrics as JSON Lines
  --metrics-csv PATH           write metrics as CSV
  --trace-json PATH            write a Chrome trace (load in Perfetto)
  --watch                      print the live cluster top view each epoch
  --watch-ms MS                telemetry emission interval    (default 50)
  --watchdog-ms MS             GM stall watchdog deadline     (default 250)
  --flight-json PATH           write the flight-recorder ring (JSONL)"
    );
    std::process::exit(2)
}

/// Parse a full argument vector (without the program name). Returns a
/// descriptive error for unknown flags, missing values, or bad numbers so
/// the caller — and the unit tests — can check rejection behaviour.
fn parse_from(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        app: String::new(),
        platform: "sunos".into(),
        procs: 4,
        n: 400,
        block: 8,
        depth: 5,
        jobs: 16,
        organization: "linked".into(),
        protocol: "tcp".into(),
        cache: false,
        trace: false,
        machines: 6,
        metrics_json: None,
        metrics_csv: None,
        trace_json: None,
        watch: false,
        watch_ms: 50,
        watchdog_ms: 250,
        flight_json: None,
    };
    let mut it = argv.iter();
    args.app = it.next().ok_or("missing application name")?.clone();
    if args.app == "--help" || args.app == "-h" {
        return Err("help".into());
    }
    while let Some(flag) = it.next() {
        let mut val = || -> Result<String, String> {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        let num = |flag: &str, v: String| -> Result<usize, String> {
            v.parse()
                .map_err(|_| format!("flag {flag}: '{v}' is not a number"))
        };
        match flag.as_str() {
            "--platform" => args.platform = val()?,
            "--procs" => args.procs = num(flag, val()?)?,
            "--machines" => args.machines = num(flag, val()?)?,
            "--n" => args.n = num(flag, val()?)?,
            "--block" => args.block = num(flag, val()?)?,
            "--depth" => args.depth = num(flag, val()?)? as u32,
            "--jobs" => args.jobs = num(flag, val()?)?,
            "--organization" => args.organization = val()?,
            "--protocol" => args.protocol = val()?,
            "--cache" => args.cache = true,
            "--trace" => args.trace = true,
            "--metrics-json" => args.metrics_json = Some(val()?),
            "--metrics-csv" => args.metrics_csv = Some(val()?),
            "--trace-json" => args.trace_json = Some(val()?),
            "--watch" => args.watch = true,
            "--watch-ms" => args.watch_ms = num(flag, val()?)? as u64,
            "--watchdog-ms" => args.watchdog_ms = num(flag, val()?)? as u64,
            "--flight-json" => args.flight_json = Some(val()?),
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Probe every requested output path for writability *before* the run, so
/// a typo'd directory fails in milliseconds instead of after minutes of
/// simulation. The probe opens in append mode: an existing file is left
/// intact until the real (truncating) write at the end of the run.
fn validate_out_paths(args: &Args) -> Result<(), String> {
    let outs = [
        (&args.metrics_json, "metrics (JSONL)"),
        (&args.metrics_csv, "metrics (CSV)"),
        (&args.trace_json, "Chrome trace"),
        (&args.flight_json, "flight recorder"),
    ];
    for (path, what) in outs {
        if let Some(path) = path {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("cannot write {what} to {path}: {e}"))?;
        }
    }
    Ok(())
}

fn parse() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    parse_from(&argv).unwrap_or_else(|err| {
        if err != "help" {
            eprintln!("{err}");
        }
        usage()
    })
}

fn main() {
    let args = parse();
    let platform = Platform::by_id(&args.platform).unwrap_or_else(|| {
        eprintln!("unknown platform '{}'", args.platform);
        usage()
    });
    let mut config = DseConfig::paper().with_gm_cache(args.cache);
    config.organization = match args.organization.as_str() {
        "linked" => Organization::LinkedLibrary,
        "legacy" => Organization::SeparateProcess,
        _ => usage(),
    };
    config.protocol = match args.protocol.as_str() {
        "tcp" => Protocol::TcpIp,
        "udp" => Protocol::Udp,
        "raw" => Protocol::RawEthernet,
        _ => usage(),
    };
    if let Err(e) = validate_out_paths(&args) {
        eprintln!("{e}");
        std::process::exit(1);
    }
    // --watch and --flight-json both need the in-band telemetry plane.
    if args.watch || args.flight_json.is_some() {
        config.telemetry = Some(
            TelemetryConfig::default()
                .with_interval(SimDuration::from_millis(args.watch_ms))
                .with_watchdog_deadline(SimDuration::from_millis(args.watchdog_ms)),
        );
    }
    // A Chrome trace needs the per-process event timeline, so --trace-json
    // implies tracing even without the printed breakdown.
    let tracing = args.trace || args.trace_json.is_some();
    config = config.with_machines(args.machines).with_tracing(tracing);
    let mut program = DseProgram::new(platform.clone()).with_config(config);
    if args.watch {
        program = program.with_epoch_hook(|agg, now_ns| {
            println!("-- t={:.1}ms", now_ns as f64 / 1e6);
            print!("{}", dse::ssi::render_top(agg, now_ns));
        });
    }

    println!(
        "# {} on {} ({}), {} processors / {} machines",
        args.app, platform.os, platform.machine, args.procs, args.machines
    );
    let run = match args.app.as_str() {
        "gauss" => {
            let params = gauss_seidel::GaussSeidelParams::paper(args.n);
            let (run, sol) = gauss_seidel::solve_parallel(&program, args.procs, params);
            println!(
                "solved N={} in {} sweeps, final delta {:.2e}",
                args.n, sol.iters, sol.delta
            );
            run
        }
        "gauss-mp" => {
            let params = gauss_seidel::GaussSeidelParams::paper(args.n);
            let (run, sol) = gauss_seidel_mp::solve_parallel_mp(&program, args.procs, params);
            println!(
                "solved N={} (message passing) in {} sweeps, final delta {:.2e}",
                args.n, sol.iters, sol.delta
            );
            run
        }
        "dct" => {
            let params = dct::DctParams::paper(args.block);
            let (run, out) = dct::compress_parallel(&program, args.procs, params);
            println!(
                "compressed {}x{} image, {} coefficients kept",
                params.size,
                params.size,
                out.coeffs.len()
            );
            run
        }
        "othello" => {
            let params = othello::OthelloParams::paper(args.depth);
            let (run, (mv, score)) = othello::search_parallel(&program, args.procs, params);
            println!(
                "depth {}: best move {}{} score {:+}",
                args.depth,
                (b'a' + mv % 8) as char,
                mv / 8 + 1,
                score
            );
            run
        }
        "matmul" => {
            let params = matmul::MatmulParams::single(args.n.min(256));
            let (run, c) = matmul::multiply_parallel(&program, args.procs, params);
            println!("multiplied {0}x{0} matrices, C[0]={1:.4}", params.n, c[0]);
            run
        }
        "knights" => {
            let params = knights::KnightsParams::paper(args.jobs);
            let (run, count) = knights::count_parallel(&program, args.procs, params);
            println!("counted {count} tours ({} jobs)", args.jobs);
            run
        }
        _ => usage(),
    };

    println!(
        "execution time: {}   messages: {}   wire bytes: {}   collisions: {}",
        run.elapsed, run.stats.messages, run.net_wire_bytes, run.net_collisions
    );
    if args.cache {
        println!(
            "cache: {} hits / {} misses / {} invalidations",
            run.stats.cache_hits, run.stats.cache_misses, run.stats.cache_invalidations
        );
    }
    if args.trace {
        let trace = run.report.trace.as_ref().expect("tracing enabled");
        let analysis = analyze(trace, run.report.end_time);
        println!();
        print!("{}", analysis.render());
        println!("{}", gantt(trace, run.report.end_time, 72));
    }
    let write = |path: &str, what: &str, data: String| {
        if let Err(e) = std::fs::write(path, data) {
            eprintln!("cannot write {what} to {path}: {e}");
            std::process::exit(1);
        }
        println!("{what} written to {path}");
    };
    if let Some(path) = &args.metrics_json {
        write(path, "metrics (JSONL)", run.metrics_jsonl());
    }
    if let Some(path) = &args.metrics_csv {
        write(path, "metrics (CSV)", run.metrics_csv());
    }
    if let Some(path) = &args.trace_json {
        write(path, "Chrome trace", run.chrome_trace_json());
    }
    if let Some(tel) = &run.telemetry {
        for s in &tel.stalls {
            println!(
                "STALL: {:?} from pe {} seq {} waited {:.1}ms past the {}ms deadline",
                s.kind,
                s.pe,
                s.seq,
                s.waited_ns() as f64 / 1e6,
                args.watchdog_ms
            );
        }
        if let Some(path) = &args.flight_json {
            write(
                path,
                "flight recorder",
                tel.flight_jsonl.clone().unwrap_or_default(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_fill_in() {
        let a = parse_from(&argv("gauss")).unwrap();
        assert_eq!(a.app, "gauss");
        assert_eq!(a.platform, "sunos");
        assert_eq!(a.procs, 4);
        assert_eq!(a.machines, 6);
        assert!(!a.cache && !a.trace);
        assert_eq!(a.metrics_json, None);
        assert_eq!(a.trace_json, None);
    }

    #[test]
    fn all_flags_parse() {
        let a = parse_from(&argv(
            "dct --platform linux --procs 8 --machines 4 --n 128 --block 16              --depth 7 --jobs 32 --organization legacy --protocol udp --cache --trace",
        ))
        .unwrap();
        assert_eq!(a.platform, "linux");
        assert_eq!(a.procs, 8);
        assert_eq!(a.machines, 4);
        assert_eq!(a.n, 128);
        assert_eq!(a.block, 16);
        assert_eq!(a.depth, 7);
        assert_eq!(a.jobs, 32);
        assert_eq!(a.organization, "legacy");
        assert_eq!(a.protocol, "udp");
        assert!(a.cache && a.trace);
    }

    #[test]
    fn observability_flags_parse() {
        let a = parse_from(&argv(
            "gauss --metrics-json m.jsonl --metrics-csv m.csv --trace-json t.json",
        ))
        .unwrap();
        assert_eq!(a.metrics_json.as_deref(), Some("m.jsonl"));
        assert_eq!(a.metrics_csv.as_deref(), Some("m.csv"));
        assert_eq!(a.trace_json.as_deref(), Some("t.json"));
    }

    #[test]
    fn watch_flags_parse_with_defaults() {
        let a = parse_from(&argv("gauss")).unwrap();
        assert!(!a.watch);
        assert_eq!(a.watch_ms, 50);
        assert_eq!(a.watchdog_ms, 250);
        assert_eq!(a.flight_json, None);
        let a = parse_from(&argv(
            "gauss --watch --watch-ms 5 --watchdog-ms 40 --flight-json f.jsonl",
        ))
        .unwrap();
        assert!(a.watch);
        assert_eq!(a.watch_ms, 5);
        assert_eq!(a.watchdog_ms, 40);
        assert_eq!(a.flight_json.as_deref(), Some("f.jsonl"));
    }

    #[test]
    fn out_path_validation_probes_before_the_run() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("target")
            .join("dse-run-validate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut a = parse_from(&argv("gauss")).unwrap();
        assert!(validate_out_paths(&a).is_ok(), "no paths: nothing to probe");
        a.metrics_json = Some(dir.join("m.jsonl").to_string_lossy().into_owned());
        assert!(validate_out_paths(&a).is_ok());
        // The probe must not clobber existing content before the run.
        let existing = dir.join("keep.csv");
        std::fs::write(&existing, "old").unwrap();
        a.metrics_csv = Some(existing.to_string_lossy().into_owned());
        assert!(validate_out_paths(&a).is_ok());
        assert_eq!(std::fs::read_to_string(&existing).unwrap(), "old");
        // A missing parent directory is rejected with a clear message.
        a.flight_json = Some(
            dir.join("no-such-dir")
                .join("f.jsonl")
                .to_string_lossy()
                .into_owned(),
        );
        let err = validate_out_paths(&a).unwrap_err();
        assert!(err.contains("cannot write flight recorder"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_flag_rejected() {
        let err = parse_from(&argv("gauss --frobnicate")).unwrap_err();
        assert!(err.contains("unknown flag --frobnicate"), "{err}");
    }

    #[test]
    fn missing_value_rejected() {
        let err = parse_from(&argv("gauss --metrics-json")).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
    }

    #[test]
    fn bad_number_rejected() {
        let err = parse_from(&argv("gauss --procs many")).unwrap_err();
        assert!(err.contains("not a number"), "{err}");
    }

    #[test]
    fn missing_app_rejected() {
        let err = parse_from(&[]).unwrap_err();
        assert!(err.contains("missing application"), "{err}");
    }
}
