//! `dse-run` — command-line front end to the DSE reproduction.
//!
//! Run any of the paper's workloads on any simulated platform and
//! configuration, and optionally print the execution-trace breakdown:
//!
//! ```sh
//! dse-run gauss   --platform sunos --procs 4 --n 600
//! dse-run dct     --platform linux --procs 8 --block 16 --trace
//! dse-run othello --platform aix   --procs 6 --depth 7
//! dse-run knights --platform sunos --procs 12 --jobs 16 --organization legacy
//! dse-run gauss-mp --procs 4 --n 400          # message-passing variant
//! ```

use dse::apps::{dct, gauss_seidel, gauss_seidel_mp, knights, matmul, othello};
use dse::net::Protocol;
use dse::prelude::*;
use dse_trace::{analyze, gantt};

struct Args {
    app: String,
    platform: String,
    procs: usize,
    n: usize,
    block: usize,
    depth: u32,
    jobs: usize,
    organization: String,
    protocol: String,
    cache: bool,
    trace: bool,
    machines: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: dse-run <gauss|gauss-mp|dct|othello|knights|matmul> [options]
  --platform sunos|aix|linux   simulated platform        (default sunos)
  --procs N                    processors 1..12           (default 4)
  --machines N                 physical machines          (default 6)
  --n N                        Gauss-Seidel dimension     (default 400)
  --block B                    DCT block size             (default 8)
  --depth D                    Othello search depth       (default 5)
  --jobs J                     Knight's-Tour job count    (default 16)
  --organization linked|legacy software organization     (default linked)
  --protocol tcp|udp|raw       protocol stack             (default tcp)
  --cache                      enable the GM cache
  --trace                      print the execution-time breakdown"
    );
    std::process::exit(2)
}

fn parse() -> Args {
    let mut args = Args {
        app: String::new(),
        platform: "sunos".into(),
        procs: 4,
        n: 400,
        block: 8,
        depth: 5,
        jobs: 16,
        organization: "linked".into(),
        protocol: "tcp".into(),
        cache: false,
        trace: false,
        machines: 6,
    };
    let mut it = std::env::args().skip(1);
    args.app = it.next().unwrap_or_else(|| usage());
    while let Some(flag) = it.next() {
        let val = |it: &mut dyn Iterator<Item = String>| it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--platform" => args.platform = val(&mut it),
            "--procs" => args.procs = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--machines" => args.machines = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--n" => args.n = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--block" => args.block = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--depth" => args.depth = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--jobs" => args.jobs = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--organization" => args.organization = val(&mut it),
            "--protocol" => args.protocol = val(&mut it),
            "--cache" => args.cache = true,
            "--trace" => args.trace = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn main() {
    let args = parse();
    let platform = Platform::by_id(&args.platform).unwrap_or_else(|| {
        eprintln!("unknown platform '{}'", args.platform);
        usage()
    });
    let mut config = DseConfig::paper().with_gm_cache(args.cache);
    config.organization = match args.organization.as_str() {
        "linked" => Organization::LinkedLibrary,
        "legacy" => Organization::SeparateProcess,
        _ => usage(),
    };
    config.protocol = match args.protocol.as_str() {
        "tcp" => Protocol::TcpIp,
        "udp" => Protocol::Udp,
        "raw" => Protocol::RawEthernet,
        _ => usage(),
    };
    let program = DseProgram::new(platform.clone())
        .with_machines(args.machines)
        .with_config(config)
        .with_tracing(args.trace);

    println!(
        "# {} on {} ({}), {} processors / {} machines",
        args.app, platform.os, platform.machine, args.procs, args.machines
    );
    let run = match args.app.as_str() {
        "gauss" => {
            let params = gauss_seidel::GaussSeidelParams::paper(args.n);
            let (run, sol) = gauss_seidel::solve_parallel(&program, args.procs, params);
            println!(
                "solved N={} in {} sweeps, final delta {:.2e}",
                args.n, sol.iters, sol.delta
            );
            run
        }
        "gauss-mp" => {
            let params = gauss_seidel::GaussSeidelParams::paper(args.n);
            let (run, sol) = gauss_seidel_mp::solve_parallel_mp(&program, args.procs, params);
            println!(
                "solved N={} (message passing) in {} sweeps, final delta {:.2e}",
                args.n, sol.iters, sol.delta
            );
            run
        }
        "dct" => {
            let params = dct::DctParams::paper(args.block);
            let (run, out) = dct::compress_parallel(&program, args.procs, params);
            println!(
                "compressed {}x{} image, {} coefficients kept",
                params.size,
                params.size,
                out.coeffs.len()
            );
            run
        }
        "othello" => {
            let params = othello::OthelloParams::paper(args.depth);
            let (run, (mv, score)) = othello::search_parallel(&program, args.procs, params);
            println!(
                "depth {}: best move {}{} score {:+}",
                args.depth,
                (b'a' + mv % 8) as char,
                mv / 8 + 1,
                score
            );
            run
        }
        "matmul" => {
            let params = matmul::MatmulParams::single(args.n.min(256));
            let (run, c) = matmul::multiply_parallel(&program, args.procs, params);
            println!("multiplied {0}x{0} matrices, C[0]={1:.4}", params.n, c[0]);
            run
        }
        "knights" => {
            let params = knights::KnightsParams::paper(args.jobs);
            let (run, count) = knights::count_parallel(&program, args.procs, params);
            println!("counted {count} tours ({} jobs)", args.jobs);
            run
        }
        _ => usage(),
    };

    println!(
        "execution time: {}   messages: {}   wire bytes: {}   collisions: {}",
        run.elapsed, run.stats.messages, run.net_wire_bytes, run.net_collisions
    );
    if args.cache {
        println!(
            "cache: {} hits / {} misses / {} invalidations",
            run.stats.cache_hits, run.stats.cache_misses, run.stats.cache_invalidations
        );
    }
    if args.trace {
        let trace = run.report.trace.as_ref().expect("tracing enabled");
        let analysis = analyze(trace, run.report.end_time);
        println!();
        print!("{}", analysis.render());
        println!("{}", gantt(trace, run.report.end_time, 72));
    }
}
