//! Acceptance tests for the split-phase global-memory API (ISSUE tentpole):
//! routing every blocking GM access through `gm_read_nb`/`gm_write_nb` +
//! `gm_wait` must leave all four paper workloads bit-identical on fixed
//! seeds, the in-flight window must bound outstanding requests (and
//! backpressure instead of failing), waiting on a handle discarded by
//! `gm_wait_all` must panic, and coalesced writes must cost one cache
//! invalidation round per merged request.

use dse::api::GmHandle;
use dse::apps::dct::{self, DctParams};
use dse::apps::gauss_seidel::{self, GaussSeidelParams};
use dse::apps::knights::{self, KnightsParams};
use dse::apps::othello::{self, OthelloParams};
use dse::apps::Capture;
use dse::msg::{NodeId, RegionId};
use dse::prelude::*;

// ---------------------------------------------------------------------------
// A ParallelApi adapter that reroutes every blocking GM access through the
// split-phase entry points: issue immediately, redeem immediately. Running
// an unmodified application body through it exercises the whole pipelining
// machinery (staging, flush, completion, handle redemption) while promising
// the same semantics as the blocking calls.
// ---------------------------------------------------------------------------

struct SplitPhaseShim<'a, A: ParallelApi>(&'a mut A);

impl<A: ParallelApi> ParallelApi for SplitPhaseShim<'_, A> {
    fn rank(&self) -> u32 {
        self.0.rank()
    }
    fn nprocs(&self) -> usize {
        self.0.nprocs()
    }
    fn compute(&mut self, work: Work) {
        self.0.compute(work)
    }
    fn gm_alloc(&mut self, len: usize, dist: Distribution) -> RegionId {
        self.0.gm_alloc(len, dist)
    }
    fn gm_read(&mut self, region: RegionId, offset: u64, len: usize) -> Vec<u8> {
        let h = self.0.gm_read_nb(region, offset, len);
        self.0.gm_wait(h).expect("split-phase read carries data")
    }
    fn gm_write(&mut self, region: RegionId, offset: u64, data: &[u8]) {
        let h = self.0.gm_write_nb(region, offset, data);
        assert!(self.0.gm_wait(h).is_none(), "writes complete without data");
    }
    fn gm_fetch_add(&mut self, region: RegionId, offset: u64, delta: i64) -> i64 {
        self.0.gm_fetch_add(region, offset, delta)
    }
    fn take_scratch(&mut self) -> Vec<u8> {
        self.0.take_scratch()
    }
    fn put_scratch(&mut self, buf: Vec<u8>) {
        self.0.put_scratch(buf)
    }
    fn barrier(&mut self) {
        self.0.barrier()
    }
    fn lock(&mut self, id: u32) {
        self.0.lock(id)
    }
    fn unlock(&mut self, id: u32) {
        self.0.unlock(id)
    }
}

/// Run the same application body once directly and once through
/// [`SplitPhaseShim`]; the body path is expanded separately for each
/// engine so it instantiates against both contexts.
macro_rules! direct_and_shimmed {
    ($procs:expr, $app:path, $params:expr) => {{
        let program = DseProgram::new(Platform::sunos_sparc());
        let params = $params;
        let direct = {
            let cap = Capture::new();
            let c = cap.clone();
            let run = program.run($procs, move |ctx| {
                if let Some(v) = $app(ctx, &params) {
                    c.set(v);
                }
            });
            (run, cap.take())
        };
        let shimmed = {
            let cap = Capture::new();
            let c = cap.clone();
            let run = program.run($procs, move |ctx| {
                let mut shim = SplitPhaseShim(ctx);
                if let Some(v) = $app(&mut shim, &params) {
                    c.set(v);
                }
            });
            (run, cap.take())
        };
        (direct, shimmed)
    }};
}

#[test]
fn gauss_seidel_split_phase_is_bit_identical() {
    let ((drun, dsol), (srun, ssol)) =
        direct_and_shimmed!(3, gauss_seidel::body, GaussSeidelParams::paper(60));
    assert_eq!(dsol.x, ssol.x, "solution vectors must match bit-for-bit");
    assert_eq!(dsol.iters, ssol.iters);
    assert_eq!(dsol.delta.to_bits(), ssol.delta.to_bits());
    // Same requests on the wire; only the send instants (and hence bus
    // contention) may shift, so elapsed times are close but not asserted
    // equal.
    assert_eq!(drun.stats.gm_request_msgs, srun.stats.gm_request_msgs);
    assert_eq!(drun.net_wire_bytes, srun.net_wire_bytes);
}

#[test]
fn dct_split_phase_is_bit_identical() {
    let params = DctParams {
        size: 64,
        block: 8,
        keep: 0.25,
        seed: 0xD0C7,
    };
    let ((drun, dout), (srun, sout)) = direct_and_shimmed!(3, dct::body, params);
    assert_eq!(dout.coeffs, sout.coeffs);
    assert_eq!(dout.kept, sout.kept);
    assert_eq!(drun.stats.gm_request_msgs, srun.stats.gm_request_msgs);
    assert_eq!(drun.net_wire_bytes, srun.net_wire_bytes);
}

#[test]
fn othello_split_phase_is_bit_identical() {
    let ((drun, dres), (srun, sres)) =
        direct_and_shimmed!(3, othello::body, OthelloParams::paper(3));
    assert_eq!(dres, sres, "(move, score) must match");
    assert_eq!(drun.stats.gm_request_msgs, srun.stats.gm_request_msgs);
    assert_eq!(drun.net_wire_bytes, srun.net_wire_bytes);
}

#[test]
fn knights_split_phase_is_bit_identical() {
    let ((drun, dcount), (srun, scount)) =
        direct_and_shimmed!(3, knights::body, KnightsParams::paper(8));
    assert_eq!(dcount, scount, "tour counts must match");
    assert_eq!(drun.stats.gm_request_msgs, srun.stats.gm_request_msgs);
    assert_eq!(drun.net_wire_bytes, srun.net_wire_bytes);
}

#[test]
fn window_full_backpressures_and_completes() {
    // 6 PEs, one element homed on each; a gm_window of 2 forces the flush
    // of rank 0's five outstanding reads to drain completions mid-issue.
    let program =
        DseProgram::new(Platform::sunos_sparc()).with_config(DseConfig::paper().with_gm_window(2));
    let run = program.run(6, |ctx| {
        let arr = GmArray::<u64>::alloc(ctx, 6, Distribution::Blocked);
        let rank = ctx.rank() as usize;
        arr.set(ctx, rank, rank as u64 * 7 + 1);
        ctx.barrier();
        if ctx.rank() == 0 {
            for _ in 0..4 {
                let handles: Vec<(usize, GmHandle)> = (1..6)
                    .map(|i| (i, ctx.gm_read_nb(arr.region(), (i * 8) as u64, 8)))
                    .collect();
                for (i, h) in handles {
                    let bytes = ctx.gm_wait(h).expect("read handle carries data");
                    let v = u64::from_le_bytes(bytes.as_slice().try_into().unwrap());
                    assert_eq!(v, i as u64 * 7 + 1);
                }
            }
        }
        ctx.barrier();
    });
    // The in-flight high-water gauge proves the window was both reached
    // and respected.
    let peak = run
        .metrics
        .gauge("kernel", "gm_inflight", Some(0))
        .expect("rank 0 issued pipelined requests");
    assert_eq!(peak, 2, "in-flight peak must equal the configured window");
}

#[test]
#[should_panic(expected = "stale handle")]
fn wait_on_handle_discarded_by_wait_all_panics() {
    let program = DseProgram::new(Platform::sunos_sparc());
    program.run(2, |ctx| {
        let arr = GmArray::<u64>::alloc(ctx, 2, Distribution::OnNode(NodeId(1)));
        ctx.barrier();
        if ctx.rank() == 0 {
            let h = ctx.gm_read_nb(arr.region(), 0, 8);
            ctx.gm_wait_all(); // discards the un-redeemed result
            ctx.gm_wait(h); // must panic: the handle is stale
        }
    });
}

#[test]
fn coalesced_writes_cost_one_invalidation_round_per_merged_request() {
    // Rank 0 caches the home block (gm-cache on); rank 2 then publishes
    // four adjacent elements per round split-phase. The four writes
    // coalesce into one wire request, so the home runs exactly one
    // invalidation round per round of writes — not one per element.
    const ROUNDS: u64 = 4;
    let program = DseProgram::new(Platform::sunos_sparc())
        .with_config(DseConfig::paper().with_gm_cache(true));
    let run = program.run(3, |ctx| {
        let arr = GmArray::<u64>::alloc(ctx, 64, Distribution::OnNode(NodeId(1)));
        ctx.barrier();
        for round in 0..ROUNDS {
            if ctx.rank() == 0 {
                // (Re-)replicate the block so the next write must invalidate.
                let _ = arr.read(ctx, 0, 64);
            }
            ctx.barrier();
            if ctx.rank() == 2 {
                let handles: Vec<GmHandle> = (0..4u64)
                    .map(|j| {
                        let val = round * 100 + j;
                        ctx.gm_write_nb(arr.region(), j * 8, &val.to_le_bytes())
                    })
                    .collect();
                for h in handles {
                    assert!(ctx.gm_wait(h).is_none());
                }
            }
            ctx.barrier();
        }
        if ctx.rank() == 0 {
            let vals = arr.read(ctx, 0, 4);
            let want: Vec<u64> = (0..4).map(|j| (ROUNDS - 1) * 100 + j).collect();
            assert_eq!(vals, want, "reader must observe the final round");
        }
        ctx.barrier();
    });
    assert_eq!(
        run.stats.invalidation_rounds, ROUNDS,
        "one invalidation round per merged write request"
    );
    // Each round merges 4 adjacent writes into one segment: 3 coalesces.
    assert!(
        run.stats.gm_coalesced >= 3 * ROUNDS,
        "adjacent split-phase writes must coalesce (got {})",
        run.stats.gm_coalesced
    );
}
