//! Integration tests for the in-band telemetry plane.
//!
//! The tentpole claim: PE0's aggregator, fed *only* by `Telemetry`
//! messages shipped over the same simulated network as every other
//! runtime message, reconstructs the direct registry snapshot exactly.
//! Plus: the epoch hook drives the live top view, and a lost GM response
//! trips the stall watchdog and dumps the flight recorder.

use dse::apps::gauss_seidel::{self, GaussSeidelParams};
use dse::obs::SpanKind;
use dse::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

fn telemetry_config(interval_ms: u64) -> DseConfig {
    DseConfig::paper().with_telemetry(
        TelemetryConfig::default().with_interval(SimDuration::from_millis(interval_ms)),
    )
}

#[test]
fn in_band_rollup_matches_direct_snapshot_exactly() {
    let program = DseProgram::new(Platform::sunos_sparc()).with_config(telemetry_config(5));
    let (run, sol) = gauss_seidel::solve_parallel(&program, 6, GaussSeidelParams::paper(120));
    assert!(sol.iters > 0);
    let tel = run.telemetry.expect("telemetry enabled");
    // The aggregator heard only in-band deltas, yet its rollup reproduces
    // the direct registry snapshot byte for byte.
    assert_eq!(tel.rollup.to_jsonl(), run.metrics.to_jsonl());
    assert!(
        tel.rollup
            .counter("kernel", "telemetry_in", Some(0))
            .unwrap_or(0)
            > 0,
        "aggregation was fed by in-band messages"
    );
    assert!(
        tel.nodes.iter().all(|n| n.finalized),
        "every PE shipped its absolute flush at shutdown: {:?}",
        tel.nodes
    );
    assert!(
        tel.nodes.iter().all(|n| n.gaps == 0 && n.stale_drops == 0),
        "{:#?}",
        tel.nodes
    );
    assert!(tel.stalls.is_empty(), "healthy run has no stalls");
}

#[test]
fn telemetry_off_leaves_run_result_untouched() {
    let program = DseProgram::new(Platform::sunos_sparc());
    let (run, _) = gauss_seidel::solve_parallel(&program, 4, GaussSeidelParams::paper(80));
    assert!(run.telemetry.is_none());
    assert_eq!(run.metrics.counter("kernel", "telemetry_in", Some(0)), None);
}

#[test]
fn epoch_hook_feeds_the_live_top_view() {
    let epochs = Arc::new(AtomicUsize::new(0));
    let last = Arc::new(Mutex::new(String::new()));
    let (e2, l2) = (Arc::clone(&epochs), Arc::clone(&last));
    let program = DseProgram::new(Platform::sunos_sparc())
        .with_config(telemetry_config(2))
        .with_epoch_hook(move |agg, now_ns| {
            e2.fetch_add(1, Ordering::SeqCst);
            *l2.lock().unwrap() = render_top(agg, now_ns);
        });
    let (run, _) = gauss_seidel::solve_parallel(&program, 3, GaussSeidelParams::paper(80));
    assert!(run.telemetry.is_some());
    assert!(epochs.load(Ordering::SeqCst) > 0, "epoch hook fired");
    let text = last.lock().unwrap().clone();
    assert!(text.starts_with("NODE"), "{text}");
    assert_eq!(text.lines().count(), 4, "header + one row per PE:\n{text}");
}

#[test]
fn lost_gm_response_trips_the_watchdog_and_dumps_the_flight_ring() {
    let config = DseConfig::paper().with_telemetry(
        TelemetryConfig::default()
            .with_interval(SimDuration::from_millis(2))
            .with_watchdog_deadline(SimDuration::from_millis(10))
            .with_flight_capacity(128),
    );
    let program = DseProgram::new(Platform::sunos_sparc()).with_config(config);
    let run = program.run(2, |ctx| {
        if ctx.rank() == 1 {
            // Forge a GM read whose response never arrives: open the span
            // by hand, then keep the cluster busy past the deadline.
            ctx.shared()
                .spans
                .open(SpanKind::GmRead, 1, 0xDEAD, ctx.now().as_nanos(), 64);
        }
        ctx.compute(Work::flops(10_000_000));
        ctx.barrier();
    });
    let tel = run.telemetry.expect("telemetry enabled");
    assert!(
        tel.stalls
            .iter()
            .any(|s| s.kind == SpanKind::GmRead && s.pe == 1 && s.seq == 0xDEAD),
        "watchdog flagged the lost response: {:?}",
        tel.stalls
    );
    let dump = tel.flight_jsonl.expect("flight dump");
    assert!(dump.contains("\"type\":\"stall\""), "{dump}");
    assert!(dump.contains("\"seq\":57005"), "0xDEAD in the dump");
    assert!(
        run.metrics
            .counter("kernel", "gm_stalls", Some(1))
            .unwrap_or(0)
            >= 1,
        "stall counter booked against the stalled PE"
    );
}
