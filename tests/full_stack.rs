//! Full-stack integration: the complete runtime (kernels, global memory,
//! network, synchronization) under each workload, configuration and
//! platform, with determinism and correctness asserted end to end.

use dse::apps::{dct, gauss_seidel, knights, othello};
use dse::net::Protocol;
use dse::prelude::*;

#[test]
fn every_app_on_every_platform() {
    for platform in Platform::all() {
        let program = DseProgram::new(platform.clone());

        let gs = gauss_seidel::GaussSeidelParams::paper(60);
        let (run, sol) = gauss_seidel::solve_parallel(&program, 3, gs);
        assert!(sol.delta <= gs.eps, "{}: solver", platform.id);
        assert!(run.secs() > 0.0);

        let dp = dct::DctParams {
            size: 64,
            block: 8,
            keep: 0.25,
            seed: 1,
        };
        let (_, out) = dct::compress_parallel(&program, 3, dp);
        assert_eq!(out, dct::compress_sequential(&dp), "{}: dct", platform.id);

        let op = othello::OthelloParams::paper(3);
        let (mv, v, _) = othello::search_sequential(&op);
        let (_, best) = othello::search_parallel(&program, 3, op);
        assert_eq!(best, (mv, v), "{}: othello", platform.id);

        let kp = knights::KnightsParams::paper(16);
        let (_, count) = knights::count_parallel(&program, 3, kp);
        assert_eq!(count, 304, "{}: knights", platform.id);
    }
}

#[test]
fn platforms_are_ranked_by_speed() {
    // The same sequential workload must be fastest on the Pentium II and
    // slowest on the SparcStation (Table 1 generations).
    let params = gauss_seidel::GaussSeidelParams::paper(200);
    let times: Vec<f64> = Platform::all()
        .into_iter()
        .map(|pl| {
            gauss_seidel::solve_parallel(&DseProgram::new(pl), 1, params)
                .0
                .secs()
        })
        .collect();
    assert!(
        times[0] > times[1] && times[1] > times[2],
        "expected sunos > aix > linux, got {times:?}"
    );
}

#[test]
fn runs_are_deterministic_across_repetition() {
    let run = || {
        let program = DseProgram::new(Platform::aix_rs6000());
        let params = dct::DctParams {
            size: 64,
            block: 8,
            keep: 0.25,
            seed: 9,
        };
        let (r, out) = dct::compress_parallel(&program, 5, params);
        (r.elapsed, r.report.trace_hash, r.net_frames, out)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn legacy_organization_is_correct_but_slower() {
    let params = gauss_seidel::GaussSeidelParams::paper(120);
    let new = DseProgram::new(Platform::sunos_sparc());
    let old = DseProgram::new(Platform::sunos_sparc()).with_config(DseConfig::legacy());
    let (rn, sn) = gauss_seidel::solve_parallel(&new, 4, params);
    let (ro, so) = gauss_seidel::solve_parallel(&old, 4, params);
    // Same computation, same answer...
    assert_eq!(sn.x, so.x);
    // ...but the separate-process kernel pays IPC on every interaction.
    assert!(
        ro.elapsed > rn.elapsed,
        "legacy {:?} should exceed linked {:?}",
        ro.elapsed,
        rn.elapsed
    );
}

#[test]
fn protocol_and_network_choices_preserve_results() {
    let params = knights::KnightsParams::paper(16);
    let mut times = Vec::new();
    for (name, config) in [
        ("tcp", DseConfig::paper()),
        ("udp", DseConfig::paper().with_protocol(Protocol::Udp)),
        (
            "raw",
            DseConfig::paper().with_protocol(Protocol::RawEthernet),
        ),
        (
            "switched",
            DseConfig::paper().with_network(NetworkChoice::Switched(
                100_000_000.0,
                dse::sim::SimDuration::from_micros(5),
            )),
        ),
    ] {
        let program = DseProgram::new(Platform::linux_pentium2()).with_config(config);
        let (run, count) = knights::count_parallel(&program, 4, params);
        assert_eq!(count, 304, "{name}");
        times.push((name, run.secs()));
    }
    // All correct; the switched fabric reports zero collisions.
    let program =
        DseProgram::new(Platform::linux_pentium2()).with_config(DseConfig::paper().with_network(
            NetworkChoice::Switched(100_000_000.0, dse::sim::SimDuration::from_micros(5)),
        ));
    let (run, _) = knights::count_parallel(&program, 6, params);
    assert_eq!(run.net_collisions, 0);
}

#[test]
fn seeds_change_timing_but_not_results() {
    // A bursty all-to-all workload: barrier releases synchronize the ranks'
    // sends, so the bus actually contends and the seed-driven backoff
    // jitter lands on the critical path.
    let params = gauss_seidel::GaussSeidelParams::paper(200);
    let mut elapsed = Vec::new();
    let mut xs = Vec::new();
    for seed in [1u64, 2, 3] {
        let program = DseProgram::new(Platform::sunos_sparc())
            .with_config(DseConfig::paper().with_seed(seed));
        let (run, sol) = gauss_seidel::solve_parallel(&program, 6, params);
        assert!(run.net_collisions > 0, "expected contention");
        elapsed.push(run.elapsed);
        xs.push(sol.x);
    }
    // Different backoff jitter must actually perturb the timing...
    assert!(
        elapsed[0] != elapsed[1] || elapsed[1] != elapsed[2],
        "seeds should perturb contention timing: {elapsed:?}"
    );
    // ...while the computed answers are timing-independent.
    assert_eq!(xs[0], xs[1]);
    assert_eq!(xs[1], xs[2]);
}

#[test]
fn run_result_accounting_is_consistent() {
    let params = dct::DctParams {
        size: 64,
        block: 16,
        keep: 0.25,
        seed: 2,
    };
    let program = DseProgram::new(Platform::sunos_sparc());
    let (run, _) = dct::compress_parallel(&program, 4, params);
    assert_eq!(run.nprocs, 4);
    assert_eq!(run.platform_id, "sunos");
    assert!(run.stats.invokes == 4);
    assert!(run.stats.messages > 0);
    assert!(run.net_wire_bytes > 0);
    assert!(run.net_frames > 0);
    // Every parallel process completed and the kernels drained.
    assert!(run.report.completed.iter().any(|n| n == "launcher"));
    assert_eq!(
        run.report
            .completed
            .iter()
            .filter(|n| n.starts_with("rank"))
            .count(),
        4
    );
}

#[test]
fn twelve_processors_on_six_machines_works() {
    let params = knights::KnightsParams::paper(64);
    let program = DseProgram::new(Platform::linux_pentium2());
    let (run, count) = knights::count_parallel(&program, 12, params);
    assert_eq!(count, 304);
    assert_eq!(run.nprocs, 12);
}

#[test]
fn cooperative_termination_stops_workers_early() {
    use dse::apps::knights;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    // Rank 0 finds "enough" results and asks the others to stop; they poll
    // the termination flag between jobs and exit early.
    let jobs_done = Arc::new(AtomicU64::new(0));
    let jd = Arc::clone(&jobs_done);
    DseProgram::new(Platform::linux_pentium2()).run(3, move |ctx| {
        let counter = dse::prelude::GmCounter::alloc(ctx);
        ctx.barrier();
        if ctx.rank() == 0 {
            // Let everyone start, then cancel ranks 1 and 2.
            ctx.compute(dse::prelude::Work::iops(1_000_000));
            for r in 1..3 {
                ctx.terminate(ctx.pid_of_rank(r));
            }
        } else {
            let pfx = knights::prefixes(5, 6);
            loop {
                if ctx.termination_requested() {
                    break;
                }
                let j = counter.next(ctx);
                if j as usize >= pfx.len() {
                    break;
                }
                let mut nodes = 0;
                let _ = knights::count_from(5, pfx[j as usize], &mut nodes);
                ctx.compute(dse::prelude::Work::iops(nodes * 260));
                jd.fetch_add(1, Ordering::SeqCst);
            }
        }
        ctx.barrier();
    });
    let done = jobs_done.load(Ordering::SeqCst);
    assert!(done > 0, "workers should have started");
    assert!(done < 256, "termination should cut the run short: {done}");
}
