//! The optional global-memory cache (read-replicate / write-invalidate):
//! correctness under sharing, hit accounting, and its performance
//! signature (helps read-mostly workloads, taxes write-heavy ones).

use dse::apps::{gauss_seidel, knights};
use dse::msg::NodeId;
use dse::prelude::*;

fn cached() -> DseConfig {
    DseConfig::paper().with_gm_cache(true)
}

#[test]
fn repeated_remote_reads_hit_after_first_touch() {
    let result = DseProgram::new(Platform::sunos_sparc())
        .with_config(cached())
        .run(2, |ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 512, Distribution::OnNode(NodeId(0)));
            if ctx.rank() == 0 {
                let vals: Vec<u64> = (0..512).map(|i| i * 3).collect();
                arr.write(ctx, 0, &vals);
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                for _ in 0..10 {
                    let all = arr.read(ctx, 0, 512);
                    assert_eq!(all[100], 300);
                }
            }
            ctx.barrier();
        });
    assert!(
        result.stats.cache_hits > result.stats.cache_misses,
        "hits {} misses {}",
        result.stats.cache_hits,
        result.stats.cache_misses
    );
}

#[test]
fn writes_invalidate_stale_copies() {
    DseProgram::new(Platform::linux_pentium2())
        .with_config(cached())
        .run(3, |ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 256, Distribution::OnNode(NodeId(0)));
            // Phase 1: everyone reads (and caches) the zeroed table.
            let v = arr.read(ctx, 0, 256);
            assert!(v.iter().all(|&x| x == 0));
            ctx.barrier();
            // Phase 2: rank 2 overwrites it (remote write → home-kernel
            // invalidation transaction).
            if ctx.rank() == 2 {
                let vals: Vec<u64> = (0..256).map(|i| i + 1).collect();
                arr.write(ctx, 0, &vals);
            }
            ctx.barrier();
            // Phase 3: every rank must see the new values, cached or not.
            let v = arr.read(ctx, 0, 256);
            for (i, &x) in v.iter().enumerate() {
                assert_eq!(x, i as u64 + 1, "rank {} saw stale data", ctx.rank());
            }
            ctx.barrier();
        });
}

#[test]
fn local_writes_also_invalidate() {
    DseProgram::new(Platform::aix_rs6000())
        .with_config(cached())
        .run(2, |ctx| {
            let arr = GmArray::<u64>::alloc(ctx, 128, Distribution::OnNode(NodeId(0)));
            // Rank 1 caches the block.
            if ctx.rank() == 1 {
                let _ = arr.read(ctx, 0, 128);
            }
            ctx.barrier();
            // Rank 0 writes through the own-node fast path.
            if ctx.rank() == 0 {
                arr.set(ctx, 5, 99);
            }
            ctx.barrier();
            if ctx.rank() == 1 {
                assert_eq!(arr.get(ctx, 5), 99, "own-node write left a stale copy");
            }
            ctx.barrier();
        });
}

#[test]
fn apps_unchanged_under_cache() {
    // Every workload computes identical results with the cache enabled.
    let program = DseProgram::new(Platform::sunos_sparc()).with_config(cached());
    let gs = gauss_seidel::GaussSeidelParams::paper(60);
    let (_, sol) = gauss_seidel::solve_parallel(&program, 3, gs);
    let reference = {
        let plain = DseProgram::new(Platform::sunos_sparc());
        gauss_seidel::solve_parallel(&plain, 3, gs).1
    };
    assert_eq!(sol.x, reference.x);

    let (_, count) = knights::count_parallel(&program, 4, knights::KnightsParams::paper(16));
    assert_eq!(count, 304);
}

#[test]
fn cache_helps_read_mostly_sharing() {
    // All ranks repeatedly scan a table homed on node 0: with the cache
    // only the first pass pays the wire.
    let body = |ctx: &mut DseCtx<'_>| {
        let arr = GmArray::<u64>::alloc(ctx, 2048, Distribution::OnNode(NodeId(0)));
        ctx.barrier();
        for _ in 0..8 {
            let v = arr.read(ctx, 0, 2048);
            assert_eq!(v.len(), 2048);
            ctx.compute(Work::iops(2048));
        }
        ctx.barrier();
    };
    let plain = DseProgram::new(Platform::sunos_sparc()).run(4, body);
    let with_cache = DseProgram::new(Platform::sunos_sparc())
        .with_config(cached())
        .run(4, body);
    assert!(
        with_cache.elapsed.as_nanos() * 2 < plain.elapsed.as_nanos(),
        "cache should at least halve a read-mostly workload: {} vs {}",
        with_cache.elapsed,
        plain.elapsed
    );
}

#[test]
fn cache_taxes_write_heavy_sharing() {
    // Ranks alternately read and rewrite the same shared block: every
    // write now pays invalidation round trips.
    let body = |ctx: &mut DseCtx<'_>| {
        let arr = GmArray::<u64>::alloc(ctx, 64, Distribution::OnNode(NodeId(0)));
        ctx.barrier();
        for round in 0..6 {
            let _ = arr.read(ctx, 0, 64);
            ctx.barrier();
            if round % ctx.nprocs() == ctx.rank() as usize % ctx.nprocs() {
                arr.set(ctx, 0, round as u64);
            }
            ctx.barrier();
        }
    };
    let plain = DseProgram::new(Platform::sunos_sparc()).run(4, body);
    let with_cache = DseProgram::new(Platform::sunos_sparc())
        .with_config(cached())
        .run(4, body);
    assert!(
        with_cache.elapsed >= plain.elapsed,
        "invalidation traffic should not be free: {} vs {}",
        with_cache.elapsed,
        plain.elapsed
    );
}
