//! Single-system-image behaviour over live runs of the full runtime.

use dse::prelude::*;
use dse::ssi::{names, ClusterView, ProcState};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

#[test]
fn process_table_is_identical_from_every_node() {
    let tables: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let t = Arc::clone(&tables);
    DseProgram::new(Platform::sunos_sparc()).run(5, move |ctx| {
        ctx.barrier(); // all ranks registered
        let shared = Arc::clone(ctx.shared());
        let view = ClusterView::new(&shared);
        t.lock().unwrap().push(view.ps_text());
        ctx.barrier();
    });
    let tables = tables.lock().unwrap();
    assert_eq!(tables.len(), 5);
    for other in tables.iter().skip(1) {
        assert_eq!(&tables[0], other, "SSI views must agree");
    }
    assert_eq!(tables[0].matches("running").count(), 5);
}

#[test]
fn exit_states_appear_in_the_table() {
    let running_mid = Arc::new(AtomicUsize::new(0));
    let r = Arc::clone(&running_mid);
    let result = DseProgram::new(Platform::linux_pentium2()).run(4, move |ctx| {
        ctx.barrier();
        if ctx.rank() == 0 {
            let shared = Arc::clone(ctx.shared());
            let view = ClusterView::new(&shared);
            let running = view
                .ps()
                .iter()
                .filter(|e| e.state == ProcState::Running)
                .count();
            r.store(running, Ordering::SeqCst);
        }
        ctx.barrier();
    });
    assert_eq!(running_mid.load(Ordering::SeqCst), 4);
    // After the run the report confirms every rank completed.
    assert_eq!(
        result
            .report
            .completed
            .iter()
            .filter(|n| n.starts_with("rank"))
            .count(),
        4
    );
}

#[test]
fn name_service_spans_the_virtual_cluster() {
    // 9 processes on 6 machines: resolution works across co-located and
    // remote nodes alike.
    DseProgram::new(Platform::aix_rs6000()).run(9, |ctx| {
        let arr = GmArray::<i64>::alloc(ctx, 9, Distribution::Blocked);
        if ctx.rank() == 0 {
            assert!(names::bind(ctx, "results", arr.region()));
        }
        ctx.barrier();
        let region = names::lookup(ctx, "results").expect("bound");
        assert_eq!(region, arr.region());
        arr.set(ctx, ctx.rank() as usize, ctx.rank() as i64 * 11);
        ctx.barrier();
        let all = arr.read(ctx, 0, 9);
        assert_eq!(all, (0..9).map(|r| r * 11).collect::<Vec<i64>>());
    });
}

#[test]
fn placement_policies_spread_load_as_documented() {
    let mut rr = Placer::new(PlacementPolicy::RoundRobin);
    let mut ll = Placer::new(PlacementPolicy::LeastLoaded);
    // Start from an unbalanced cluster.
    let loads = vec![3, 0, 1, 0];
    let rr_picks = rr.place_all(loads.clone(), 4);
    let ll_picks = ll.place_all(loads, 4);
    assert_eq!(rr_picks, vec![0, 1, 2, 3]);
    // Least-loaded fills the empty machines first.
    assert_eq!(ll_picks[0], 1);
    assert_eq!(ll_picks[1], 3);
}
