//! Coherence-mode portability: turning the GM cache on — under either
//! coherence protocol — must never change a workload's answer, only its
//! traffic. Write-invalidate keeps replicas coherent eagerly; release
//! consistency defers invalidation to sync points, and every app in the
//! suite synchronizes (barriers, locks) before reading shared writes, so
//! its results match WI bit for bit on both engines.

use dse::apps::{dct, gauss_seidel, knights, matmul, othello};
use dse::live::{GmMode, LiveRunner};
use dse::prelude::*;
use std::sync::Mutex;

fn config(mode: GmMode) -> DseConfig {
    DseConfig::paper().with_gm_cache(true).with_gm_mode(mode)
}

/// Run a body on the live engine with the cache on under `mode` and
/// capture rank 0's result.
fn live_cached<T: Send + 'static>(
    mode: GmMode,
    nprocs: usize,
    body: impl Fn(&mut dse::live::LiveCtx) -> Option<T> + Send + Sync,
) -> T {
    let slot: Mutex<Option<T>> = Mutex::new(None);
    LiveRunner::new(nprocs)
        .gm_cache(true)
        .gm_mode(mode)
        .run(|ctx| {
            if let Some(v) = body(ctx) {
                *slot.lock().unwrap() = Some(v);
            }
        });
    slot.into_inner().unwrap().expect("rank 0 result")
}

#[test]
fn sim_cache_and_modes_preserve_gauss_seidel() {
    let params = gauss_seidel::GaussSeidelParams::paper(80);
    let base = DseProgram::new(Platform::sunos_sparc());
    let (_, plain) = gauss_seidel::solve_parallel(&base, 3, params);
    for mode in [GmMode::WriteInvalidate, GmMode::ReleaseConsistency] {
        let prog = DseProgram::new(Platform::sunos_sparc()).with_config(config(mode));
        let (_, sol) = gauss_seidel::solve_parallel(&prog, 3, params);
        assert_eq!(plain.iters, sol.iters, "{mode:?}");
        assert_eq!(plain.x, sol.x, "{mode:?}");
    }
}

#[test]
fn sim_cache_and_modes_preserve_dct() {
    let params = dct::DctParams {
        size: 128,
        block: 8,
        keep: 0.25,
        seed: 3,
    };
    let (_, plain) =
        dct::compress_parallel(&DseProgram::new(Platform::linux_pentium2()), 4, params);
    assert_eq!(plain, dct::compress_sequential(&params));
    for mode in [GmMode::WriteInvalidate, GmMode::ReleaseConsistency] {
        let prog = DseProgram::new(Platform::linux_pentium2()).with_config(config(mode));
        let (_, out) = dct::compress_parallel(&prog, 4, params);
        assert_eq!(plain, out, "{mode:?}");
    }
}

#[test]
fn sim_cache_and_modes_preserve_othello() {
    let params = othello::OthelloParams::paper(4);
    let (_, plain) = othello::search_parallel(&DseProgram::new(Platform::aix_rs6000()), 3, params);
    for mode in [GmMode::WriteInvalidate, GmMode::ReleaseConsistency] {
        let prog = DseProgram::new(Platform::aix_rs6000()).with_config(config(mode));
        let (_, best) = othello::search_parallel(&prog, 3, params);
        assert_eq!(plain, best, "{mode:?}");
    }
}

#[test]
fn sim_cache_and_modes_preserve_knights() {
    let params = knights::KnightsParams::paper(16);
    let (_, plain) = knights::count_parallel(&DseProgram::new(Platform::sunos_sparc()), 4, params);
    assert_eq!(plain, 304);
    for mode in [GmMode::WriteInvalidate, GmMode::ReleaseConsistency] {
        let prog = DseProgram::new(Platform::sunos_sparc()).with_config(config(mode));
        let (_, count) = knights::count_parallel(&prog, 4, params);
        assert_eq!(plain, count, "{mode:?}");
    }
}

#[test]
fn sim_cache_and_modes_preserve_matmul() {
    let params = matmul::MatmulParams::single(20);
    let (_, plain) =
        matmul::multiply_parallel(&DseProgram::new(Platform::sunos_sparc()), 3, params);
    assert_eq!(plain, matmul::multiply_sequential(&params));
    for mode in [GmMode::WriteInvalidate, GmMode::ReleaseConsistency] {
        let prog = DseProgram::new(Platform::sunos_sparc()).with_config(config(mode));
        let (_, c) = matmul::multiply_parallel(&prog, 3, params);
        assert_eq!(plain, c, "{mode:?}");
    }
}

#[test]
fn live_cache_and_modes_preserve_gauss_seidel() {
    let params = gauss_seidel::GaussSeidelParams::paper(80);
    let (_, sim_sol) =
        gauss_seidel::solve_parallel(&DseProgram::new(Platform::sunos_sparc()), 3, params);
    for mode in [GmMode::WriteInvalidate, GmMode::ReleaseConsistency] {
        let sol = live_cached(mode, 3, |ctx| gauss_seidel::body(ctx, &params));
        assert_eq!(sim_sol.iters, sol.iters, "{mode:?}");
        assert_eq!(sim_sol.x, sol.x, "{mode:?}");
    }
}

#[test]
fn live_cache_and_modes_preserve_dct() {
    let params = dct::DctParams {
        size: 128,
        block: 8,
        keep: 0.25,
        seed: 3,
    };
    let (_, sim_out) =
        dct::compress_parallel(&DseProgram::new(Platform::linux_pentium2()), 4, params);
    for mode in [GmMode::WriteInvalidate, GmMode::ReleaseConsistency] {
        let out = live_cached(mode, 4, |ctx| dct::body(ctx, &params));
        assert_eq!(sim_out, out, "{mode:?}");
    }
}
