//! Acceptance tests for cluster-wide causal tracing on the live engine:
//! every workload's GM request spans link requester → home serve →
//! requester redemption, the blame decomposition accounts for the whole
//! wall clock of every PE, and turning tracing on does not perturb the
//! application's answer.

use std::sync::Mutex;

use dse::apps::{dct, gauss_seidel, knights, matmul, othello};
use dse::live::{LiveCtx, LiveRunResult, LiveRunner, TransportKind};
use dse_trace::{assemble, blame};

/// Run a body on the channel-live engine, with or without tracing, and
/// capture rank 0's result alongside the run.
fn live_run<T: Send>(
    nprocs: usize,
    tracing: bool,
    body: impl Fn(&mut LiveCtx) -> Option<T> + Send + Sync,
) -> (LiveRunResult, T) {
    let slot: Mutex<Option<T>> = Mutex::new(None);
    let run = LiveRunner::new(nprocs)
        .transport(TransportKind::Channel)
        .tracing(tracing)
        .try_run(|ctx| {
            if let Some(v) = body(ctx) {
                *slot.lock().unwrap() = Some(v);
            }
        })
        .expect("live run completes");
    (run, slot.into_inner().unwrap().expect("rank 0 result"))
}

/// The per-app acceptance check: ≥99% of GM request spans causally
/// linked, blame partitions 100% of each PE's wall clock, and the result
/// is bit-identical to an untraced run.
fn check_app<T: Send + PartialEq + std::fmt::Debug>(
    name: &str,
    nprocs: usize,
    body: impl Fn(&mut LiveCtx) -> Option<T> + Send + Sync,
) {
    let (traced, result_on) = live_run(nprocs, true, &body);
    let (untraced, result_off) = live_run(nprocs, false, &body);
    assert_eq!(
        result_on, result_off,
        "{name}: tracing must not perturb the application result"
    );
    assert!(
        untraced.trace_spans.iter().all(Vec::is_empty),
        "{name}: untraced runs must record no spans"
    );

    let trace = assemble(&traced.trace_spans);
    assert_eq!(trace.nprocs, nprocs, "{name}: every PE contributes spans");
    assert!(
        trace.links.gm_reqs > 0,
        "{name}: the workload must issue GM requests"
    );
    assert!(
        trace.links.gm_link_ratio() >= 0.99,
        "{name}: only {}/{} GM chains linked ({:.2}%)",
        trace.links.gm_linked,
        trace.links.gm_reqs,
        trace.links.gm_link_ratio() * 100.0
    );
    assert_eq!(
        trace.links.barrier_linked, trace.links.barrier_waits,
        "{name}: every barrier wait must match a release"
    );

    // The blame table partitions each PE's app-span wall clock exactly:
    // compute + serve + net + retry + barrier + lock == wall, per PE.
    let table = blame(&trace);
    assert_eq!(table.rows.len(), nprocs, "{name}: one blame row per PE");
    for row in &table.rows {
        let parts = row.compute_ns
            + row.serve_ns
            + row.net_ns
            + row.retry_ns
            + row.barrier_ns
            + row.lock_ns;
        assert_eq!(
            parts, row.wall_ns,
            "{name}: blame on pe{} accounts for {parts} of {} wall ns",
            row.pe, row.wall_ns
        );
        assert!(row.wall_ns > 0, "{name}: pe{} app span is empty", row.pe);
    }
}

#[test]
fn gauss_traces_link_and_blame_accounts_wall() {
    let params = gauss_seidel::GaussSeidelParams::paper(40);
    check_app("gauss", 3, move |ctx| {
        gauss_seidel::body(ctx, &params).map(|s| (s.iters, s.x))
    });
}

#[test]
fn dct_traces_link_and_blame_accounts_wall() {
    let params = dct::DctParams {
        size: 64,
        block: 8,
        keep: 0.25,
        seed: 3,
    };
    check_app("dct", 3, move |ctx| dct::body(ctx, &params));
}

#[test]
fn othello_traces_link_and_blame_accounts_wall() {
    let params = othello::OthelloParams::paper(3);
    check_app("othello", 3, move |ctx| othello::body(ctx, &params));
}

#[test]
fn matmul_traces_link_and_blame_accounts_wall() {
    let params = matmul::MatmulParams::single(16);
    check_app("matmul", 3, move |ctx| matmul::body(ctx, &params));
}

#[test]
fn knights_traces_link_and_blame_accounts_wall() {
    let params = knights::KnightsParams::paper(8);
    check_app("knights", 3, move |ctx| knights::body(ctx, &params));
}
