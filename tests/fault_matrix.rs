//! The failure-domain matrix: every workload, every wire, under injected
//! transport faults.
//!
//! Recoverable faults (dropped and duplicated GM messages) must be fully
//! absorbed by the live engine's retry/dedup machinery — the run completes
//! with results bit-identical to a clean run. Fatal faults (an endpoint
//! disconnecting mid-run) must abort the whole cluster with a structured
//! [`RunError`] carrying first-hand failure observations and a
//! flight-recorder post-mortem — never a hang, never a panic, never a
//! leaked socket directory. Every run executes under a hard timeout so a
//! regression to the old block-forever behaviour fails fast instead of
//! wedging the test suite.

use std::sync::mpsc::RecvTimeoutError;
use std::sync::Mutex;
use std::time::Duration;

use dse::apps::{dct, gauss_seidel, knights, matmul, othello};
use dse::live::{FaultPlan, LiveCtx, LiveRunner, RunError, TransportKind};

/// Hard wall-clock ceiling for one test's worth of runs. A fault-injected
/// run that cannot finish must abort within its retry deadline, so even
/// the slowest matrix entry stays far under this.
const TEST_TIMEOUT: Duration = Duration::from_secs(120);

/// Run `f` on a watchdog thread; panic if it neither returns nor panics
/// within [`TEST_TIMEOUT`] (the hang this PR exists to prevent).
fn with_timeout<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(TEST_TIMEOUT) {
        Ok(v) => {
            let _ = worker.join();
            v
        }
        Err(RecvTimeoutError::Disconnected) => match worker.join() {
            Err(p) => std::panic::resume_unwind(p),
            Ok(()) => unreachable!("worker exited without sending"),
        },
        Err(RecvTimeoutError::Timeout) => {
            panic!("{label}: live engine hung past {TEST_TIMEOUT:?} instead of finishing/aborting")
        }
    }
}

/// Run a body on the live engine over `kind` with an optional fault plan,
/// capturing rank 0's result or the structured abort.
fn try_capture<T: Send>(
    kind: TransportKind,
    plan: Option<&str>,
    nprocs: usize,
    body: impl Fn(&mut LiveCtx) -> Option<T> + Send + Sync,
) -> Result<T, RunError> {
    let mut runner = LiveRunner::new(nprocs).transport(kind);
    if let Some(s) = plan {
        runner = runner.fault_plan(FaultPlan::parse(s).expect("test plan parses"));
    }
    let slot: Mutex<Option<T>> = Mutex::new(None);
    runner.try_run(|ctx| {
        if let Some(v) = body(ctx) {
            *slot.lock().unwrap() = Some(v);
        }
    })?;
    Ok(slot.into_inner().unwrap().expect("rank 0 result"))
}

/// The recoverable half of the matrix for one app: a clean baseline on
/// the channel wire, then {drop, dup, drop+dup+delay} × {channel, tcp},
/// each required to reproduce the baseline exactly.
fn recoverable_matrix<T: Send + PartialEq + std::fmt::Debug>(
    label: &str,
    nprocs: usize,
    body: impl Fn(&mut LiveCtx) -> Option<T> + Send + Sync,
) {
    let baseline = try_capture(TransportKind::Channel, None, nprocs, &body)
        .unwrap_or_else(|e| panic!("{label} clean baseline failed:\n{e}"));
    let plans = [
        "seed=11,drop=40",
        "seed=12,dup=80",
        "seed=13,drop=30,dup=30,delay=30:1",
    ];
    for kind in [TransportKind::Channel, TransportKind::Tcp] {
        for plan in plans {
            let faulted = try_capture(kind, Some(plan), nprocs, &body).unwrap_or_else(|e| {
                panic!("{label} on {kind:?} under `{plan}` should recover, but aborted:\n{e}")
            });
            assert_eq!(
                baseline, faulted,
                "{label} on {kind:?} under `{plan}`: result diverged from the clean run"
            );
        }
    }
}

#[test]
fn gauss_seidel_absorbs_recoverable_faults() {
    with_timeout("gauss", || {
        let params = gauss_seidel::GaussSeidelParams::paper(24);
        recoverable_matrix("gauss", 3, |ctx| {
            gauss_seidel::body(ctx, &params).map(|s| (s.iters, s.x))
        });
    });
}

#[test]
fn dct_absorbs_recoverable_faults() {
    with_timeout("dct", || {
        let params = dct::DctParams {
            size: 32,
            block: 8,
            keep: 0.25,
            seed: 3,
        };
        recoverable_matrix("dct", 4, |ctx| dct::body(ctx, &params));
    });
}

#[test]
fn othello_absorbs_recoverable_faults() {
    with_timeout("othello", || {
        let params = othello::OthelloParams::paper(2);
        recoverable_matrix("othello", 3, |ctx| othello::body(ctx, &params));
    });
}

#[test]
fn knights_absorbs_recoverable_faults() {
    with_timeout("knights", || {
        let params = knights::KnightsParams::paper(6);
        recoverable_matrix("knights", 3, |ctx| knights::body(ctx, &params));
    });
}

#[test]
fn matmul_absorbs_recoverable_faults() {
    with_timeout("matmul", || {
        let params = matmul::MatmulParams::single(12);
        recoverable_matrix("matmul", 3, |ctx| matmul::body(ctx, &params));
    });
}

/// Assert the structured-abort contract shared by every fatal-fault test:
/// first-hand observations present, a readable report, and a non-empty
/// flight-recorder post-mortem.
fn assert_structured_abort(label: &str, err: &RunError) {
    assert!(
        !err.failures.is_empty(),
        "{label}: abort carried no first-hand failures"
    );
    assert!(
        err.report().contains("first-hand failure"),
        "{label}: report missing failure summary:\n{}",
        err.report()
    );
    assert!(
        !err.flight_jsonl.is_empty(),
        "{label}: flight recorder captured nothing before the abort"
    );
}

#[test]
fn channel_disconnect_aborts_with_structured_error() {
    with_timeout("channel disconnect", || {
        let params = gauss_seidel::GaussSeidelParams::paper(40);
        let err = try_capture(
            TransportKind::Channel,
            Some("seed=3,disconnect=1:8"),
            3,
            |ctx| gauss_seidel::body(ctx, &params),
        )
        .expect_err("a severed endpoint cannot complete the run");
        assert_structured_abort("channel disconnect", &err);
    });
}

/// The acceptance scenario: a single peer disconnecting mid-run in a 4-PE
/// TCP Gauss-Seidel solve aborts the whole cluster within the retry
/// deadline, with the per-PE report and post-mortem intact.
#[test]
fn tcp_gauss_seidel_disconnect_aborts_within_deadline() {
    with_timeout("tcp disconnect", || {
        let params = gauss_seidel::GaussSeidelParams::paper(48);
        let err = try_capture(
            TransportKind::Tcp,
            Some("seed=7,disconnect=2:25"),
            4,
            |ctx| gauss_seidel::body(ctx, &params),
        )
        .expect_err("a severed endpoint cannot complete the run");
        assert_structured_abort("tcp disconnect", &err);
        // The severed endpoint itself must be among the first-hand
        // observers — its own kernel or app saw the transport close.
        assert!(
            err.failures.iter().any(|f| f.pe == 2),
            "PE 2 disconnected but never reported first-hand:\n{}",
            err.report()
        );
    });
}

#[cfg(unix)]
#[test]
fn uds_disconnect_leaves_no_socket_directories() {
    with_timeout("uds disconnect", || {
        let prefix = format!("dse-live-{}-", std::process::id());
        let socket_dirs = |prefix: &str| -> usize {
            std::fs::read_dir(std::env::temp_dir())
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().starts_with(prefix))
                .count()
        };
        let before = socket_dirs(&prefix);
        let params = gauss_seidel::GaussSeidelParams::paper(40);
        let err = try_capture(
            TransportKind::Uds,
            Some("seed=5,disconnect=1:10"),
            3,
            |ctx| gauss_seidel::body(ctx, &params),
        )
        .expect_err("a severed endpoint cannot complete the run");
        assert_structured_abort("uds disconnect", &err);
        assert_eq!(
            socket_dirs(&prefix),
            before,
            "aborted UDS run leaked its socket directory"
        );
    });
}

/// Corrupt telemetry is a recoverable fault on the observability plane:
/// the kernel drops the undecodable delta, counts it, and the application
/// result is untouched.
#[test]
fn corrupt_telemetry_is_dropped_and_counted() {
    with_timeout("corrupt telemetry", || {
        let params = gauss_seidel::GaussSeidelParams::paper(64);
        let baseline = try_capture(TransportKind::Channel, None, 3, |ctx| {
            gauss_seidel::body(ctx, &params).map(|s| (s.iters, s.x))
        })
        .expect("clean baseline");
        let slot: Mutex<Option<(usize, Vec<f64>)>> = Mutex::new(None);
        let hook = |_agg: &dse::obs::ClusterAggregator, _now_ns: u64| {};
        let run = LiveRunner::new(3)
            .transport(TransportKind::Channel)
            .fault_plan(FaultPlan::parse("seed=9,corrupt=1000").unwrap())
            .watch(Duration::from_millis(1), &hook)
            .try_run(|ctx| {
                if let Some(s) = gauss_seidel::body(ctx, &params) {
                    *slot.lock().unwrap() = Some((s.iters, s.x));
                }
            })
            .expect("corrupt telemetry must not abort the run");
        assert_eq!(
            slot.into_inner().unwrap().expect("rank 0 result"),
            baseline,
            "telemetry corruption leaked into application results"
        );
        assert!(
            run.metrics
                .counter_sum_over_pes("kernel", "telemetry_corrupt")
                > 0,
            "no corrupt telemetry delta was ever counted"
        );
    });
}
