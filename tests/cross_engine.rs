//! Portability, mechanically: each workload's single SPMD body produces
//! identical results on the deterministic simulated cluster and on the
//! real-thread live engine — and on the live engine the answer is the same
//! whichever wire carries the messages (in-process channel or framed TCP
//! over loopback), which is the paper's portability claim for the
//! transport layer.

//! A third axis rides the same claim: the live engine's two kernel
//! drivers — one OS thread per PE, or every PE's kernel as a poll-driven
//! task on a small worker pool — share one protocol state machine, so
//! every workload is bit-identical across `SchedulerKind` too.

use dse::apps::{dct, gauss_seidel, knights, othello};
use dse::live::{LiveRunner, SchedulerKind, TransportKind};
use dse::prelude::*;
use std::sync::Mutex;

/// Run a body on the live engine over `kind` under `sched` and capture
/// rank 0's result.
fn live_capture_with<T: Send + 'static>(
    kind: TransportKind,
    sched: SchedulerKind,
    nprocs: usize,
    body: impl Fn(&mut dse::live::LiveCtx) -> Option<T> + Send + Sync,
) -> T {
    let slot: Mutex<Option<T>> = Mutex::new(None);
    LiveRunner::new(nprocs)
        .transport(kind)
        .scheduler(sched)
        .run(|ctx| {
            if let Some(v) = body(ctx) {
                *slot.lock().unwrap() = Some(v);
            }
        });
    slot.into_inner().unwrap().expect("rank 0 result")
}

/// Run a body on the live engine over `kind` and capture rank 0's result.
fn live_capture_on<T: Send + 'static>(
    kind: TransportKind,
    nprocs: usize,
    body: impl Fn(&mut dse::live::LiveCtx) -> Option<T> + Send + Sync,
) -> T {
    live_capture_with(kind, SchedulerKind::Threads, nprocs, body)
}

fn live_capture<T: Send + 'static>(
    nprocs: usize,
    body: impl Fn(&mut dse::live::LiveCtx) -> Option<T> + Send + Sync,
) -> T {
    live_capture_on(TransportKind::Channel, nprocs, body)
}

#[test]
fn gauss_seidel_same_on_both_engines() {
    let params = gauss_seidel::GaussSeidelParams::paper(80);
    let program = DseProgram::new(Platform::sunos_sparc());
    let (_, sim_sol) = gauss_seidel::solve_parallel(&program, 3, params);
    let live_sol = live_capture(3, |ctx| gauss_seidel::body(ctx, &params));
    // Both engines execute the same sweeps in the same barrier structure,
    // so results agree exactly.
    assert_eq!(sim_sol.iters, live_sol.iters);
    assert_eq!(sim_sol.x, live_sol.x);
    let tcp_sol = live_capture_on(TransportKind::Tcp, 3, |ctx| {
        gauss_seidel::body(ctx, &params)
    });
    assert_eq!(sim_sol.iters, tcp_sol.iters);
    assert_eq!(sim_sol.x, tcp_sol.x);
}

#[test]
fn dct_same_on_both_engines() {
    let params = dct::DctParams {
        size: 128,
        block: 8,
        keep: 0.25,
        seed: 3,
    };
    let program = DseProgram::new(Platform::linux_pentium2());
    let (_, sim_out) = dct::compress_parallel(&program, 4, params);
    let live_out = live_capture(4, |ctx| dct::body(ctx, &params));
    assert_eq!(sim_out, live_out);
    assert_eq!(sim_out, dct::compress_sequential(&params));
    let tcp_out = live_capture_on(TransportKind::Tcp, 4, |ctx| dct::body(ctx, &params));
    assert_eq!(sim_out, tcp_out);
}

#[test]
fn othello_same_on_both_engines() {
    let params = othello::OthelloParams::paper(4);
    let program = DseProgram::new(Platform::aix_rs6000());
    let (_, sim_best) = othello::search_parallel(&program, 3, params);
    let live_best = live_capture(3, |ctx| othello::body(ctx, &params));
    assert_eq!(sim_best, live_best);
    let (mv, v, _) = othello::search_sequential(&params);
    assert_eq!(sim_best, (mv, v));
    let tcp_best = live_capture_on(TransportKind::Tcp, 3, |ctx| othello::body(ctx, &params));
    assert_eq!(sim_best, tcp_best);
}

#[test]
fn knights_same_on_both_engines() {
    let params = knights::KnightsParams::paper(16);
    let program = DseProgram::new(Platform::sunos_sparc());
    let (_, sim_count) = knights::count_parallel(&program, 4, params);
    let live_count = live_capture(4, |ctx| knights::body(ctx, &params));
    assert_eq!(sim_count, live_count);
    assert_eq!(sim_count, 304);
    let tcp_count = live_capture_on(TransportKind::Tcp, 4, |ctx| knights::body(ctx, &params));
    assert_eq!(sim_count, tcp_count);
}

#[test]
fn matmul_same_on_both_engines() {
    use dse::apps::matmul;
    let params = matmul::MatmulParams::single(20);
    let program = DseProgram::new(Platform::sunos_sparc());
    let (_, sim_c) = matmul::multiply_parallel(&program, 3, params);
    let live_c = live_capture(3, |ctx| matmul::body(ctx, &params));
    assert_eq!(sim_c, live_c);
    assert_eq!(sim_c, matmul::multiply_sequential(&params));
    let tcp_c = live_capture_on(TransportKind::Tcp, 3, |ctx| matmul::body(ctx, &params));
    assert_eq!(sim_c, tcp_c);
}

/// The tentpole cross-engine claim for the task scheduler: every app's
/// answer is bit-identical whether the per-PE kernels run as dedicated
/// threads or as poll-driven tasks multiplexed on the worker pool. Both
/// drivers feed the same kernel state machine, so any divergence here is
/// an event-delivery bug, not a protocol one.
#[test]
fn all_apps_identical_across_kernel_schedulers() {
    let tasks =
        |nprocs, body: &(dyn Fn(&mut dse::live::LiveCtx) -> Option<Vec<u8>> + Send + Sync)| {
            live_capture_with(TransportKind::Channel, SchedulerKind::Tasks, nprocs, body)
        };
    let threads =
        |nprocs, body: &(dyn Fn(&mut dse::live::LiveCtx) -> Option<Vec<u8>> + Send + Sync)| {
            live_capture_with(TransportKind::Channel, SchedulerKind::Threads, nprocs, body)
        };

    let gs = gauss_seidel::GaussSeidelParams::paper(60);
    let gauss_body = move |ctx: &mut dse::live::LiveCtx| {
        gauss_seidel::body(ctx, &gs).map(|sol| {
            let mut bytes = sol.iters.to_le_bytes().to_vec();
            bytes.extend(sol.x.iter().flat_map(|v| v.to_le_bytes()));
            bytes
        })
    };
    assert_eq!(threads(3, &gauss_body), tasks(3, &gauss_body), "gauss");

    let dp = dct::DctParams {
        size: 64,
        block: 8,
        keep: 0.25,
        seed: 3,
    };
    let dct_body = move |ctx: &mut dse::live::LiveCtx| {
        dct::body(ctx, &dp).map(|out| format!("{out:?}").into_bytes())
    };
    assert_eq!(threads(4, &dct_body), tasks(4, &dct_body), "dct");

    let op = othello::OthelloParams::paper(3);
    let oth_body = move |ctx: &mut dse::live::LiveCtx| {
        othello::body(ctx, &op).map(|best| format!("{best:?}").into_bytes())
    };
    assert_eq!(threads(3, &oth_body), tasks(3, &oth_body), "othello");

    let kp = knights::KnightsParams::paper(16);
    let kn_body = move |ctx: &mut dse::live::LiveCtx| {
        knights::body(ctx, &kp).map(|count| count.to_le_bytes().to_vec())
    };
    assert_eq!(threads(4, &kn_body), tasks(4, &kn_body), "knights");

    let mp = dse::apps::matmul::MatmulParams::single(16);
    let mm_body = move |ctx: &mut dse::live::LiveCtx| {
        dse::apps::matmul::body(ctx, &mp)
            .map(|c| c.iter().flat_map(|v| v.to_le_bytes()).collect::<Vec<u8>>())
    };
    assert_eq!(threads(3, &mm_body), tasks(3, &mm_body), "matmul");
}

#[cfg(unix)]
#[test]
fn gauss_seidel_same_on_unix_sockets() {
    let params = gauss_seidel::GaussSeidelParams::paper(40);
    let channel_sol = live_capture(2, |ctx| gauss_seidel::body(ctx, &params));
    let uds_sol = live_capture_on(TransportKind::Uds, 2, |ctx| {
        gauss_seidel::body(ctx, &params)
    });
    assert_eq!(channel_sol.iters, uds_sol.iters);
    assert_eq!(channel_sol.x, uds_sol.x);
}
