//! Heterogeneous clusters (the paper's future-work direction): machines of
//! different platforms in one run, with correct per-machine costing.

use dse::apps::{gauss_seidel, knights};
use dse::prelude::*;

fn mixed() -> Vec<Platform> {
    vec![
        Platform::sunos_sparc(),
        Platform::linux_pentium2(),
        Platform::aix_rs6000(),
        Platform::linux_pentium2(),
    ]
}

#[test]
fn mixed_cluster_computes_correctly() {
    let program = DseProgram::heterogeneous(mixed());
    let params = gauss_seidel::GaussSeidelParams::paper(60);
    let (run, sol) = gauss_seidel::solve_parallel(&program, 4, params);
    assert!(sol.delta <= params.eps);
    assert!(run.secs() > 0.0);
    let sys = gauss_seidel::generate(&params);
    assert!(gauss_seidel::residual(&sys, &sol.x) < 1e-6);

    let (_, count) = knights::count_parallel(&program, 4, knights::KnightsParams::paper(16));
    assert_eq!(count, 304);
}

#[test]
fn mixed_cluster_sits_between_pure_clusters() {
    // A statically-partitioned workload on a mixed cluster is gated by its
    // slowest machine: slower than all-linux, faster than all-sparc.
    let params = gauss_seidel::GaussSeidelParams::paper(300);
    let p = 4;
    let run = |program: DseProgram| gauss_seidel::solve_parallel(&program, p, params).0.secs();
    let sparc = run(DseProgram::new(Platform::sunos_sparc()));
    let linux = run(DseProgram::new(Platform::linux_pentium2()));
    let mixed = run(DseProgram::heterogeneous(vec![
        Platform::sunos_sparc(),
        Platform::linux_pentium2(),
        Platform::sunos_sparc(),
        Platform::linux_pentium2(),
    ]));
    assert!(
        linux < mixed && mixed <= sparc * 1.05,
        "expected linux {linux} < mixed {mixed} <= sparc {sparc}"
    );
}

#[test]
fn dynamic_tasking_exploits_fast_machines() {
    // The Knight's-Tour counter deals jobs dynamically, so faster machines
    // take more jobs: the mixed cluster beats the all-slow cluster by more
    // than the static split would.
    let params = knights::KnightsParams::paper(64);
    let p = 4;
    let sparc = knights::count_parallel(&DseProgram::new(Platform::sunos_sparc()), p, params)
        .0
        .secs();
    let mixed = knights::count_parallel(
        &DseProgram::heterogeneous(vec![
            Platform::sunos_sparc(),
            Platform::linux_pentium2(),
            Platform::sunos_sparc(),
            Platform::linux_pentium2(),
        ]),
        p,
        params,
    )
    .0
    .secs();
    assert!(
        mixed < sparc * 0.75,
        "dynamic tasking should use the fast machines: mixed {mixed} vs sparc {sparc}"
    );
}

#[test]
fn heterogeneous_runs_are_deterministic() {
    let run = || {
        let program = DseProgram::heterogeneous(mixed());
        let (r, count) = knights::count_parallel(&program, 6, knights::KnightsParams::paper(16));
        (r.elapsed, r.report.trace_hash, count)
    };
    assert_eq!(run(), run());
}
