//! Smoke-runs of the figure-reproduction harness (reduced sweeps): every
//! generator produces well-formed data and the text/CSV renderers agree.

use dse::prelude::*;
use dse_bench::sweeps::{self, SweepCfg};
use dse_bench::{ablation_org, checks};

#[test]
fn gauss_figures_well_formed() {
    let cfg = SweepCfg::quick();
    let (time_fig, speed_fig) = sweeps::gauss_figures(&Platform::sunos_sparc(), &cfg);
    assert_eq!(time_fig.id, "fig4");
    assert_eq!(speed_fig.id, "fig5");
    assert_eq!(time_fig.series.len(), cfg.gauss_procs.len());
    assert_eq!(speed_fig.series.len(), cfg.gauss_dims.len());
    // Speedup at p=1 is 1.0 by construction.
    for s in &speed_fig.series {
        assert_eq!(s.y_at(1.0), Some(1.0), "series {}", s.label);
    }
    // All times positive.
    for s in &time_fig.series {
        assert!(s.points.iter().all(|&(_, y)| y > 0.0));
    }
}

#[test]
fn dct_figures_well_formed() {
    let cfg = SweepCfg::quick();
    let (time_fig, speed_fig) = sweeps::dct_figures(&Platform::linux_pentium2(), &cfg);
    assert_eq!(time_fig.id, "fig14");
    assert_eq!(speed_fig.id, "fig15");
    assert_eq!(time_fig.series.len(), cfg.dct_blocks.len());
    let csv = time_fig.to_csv();
    assert!(csv.starts_with("procs,4x4,16x16"));
    assert_eq!(csv.lines().count(), 1 + cfg.procs.len());
}

#[test]
fn othello_figures_well_formed() {
    let cfg = SweepCfg::quick();
    let (_, speed_fig) = sweeps::othello_figures(&Platform::aix_rs6000(), &cfg);
    assert_eq!(speed_fig.id, "fig17-speedup");
    let text = speed_fig.render_text();
    assert!(text.contains("Depth3"));
    assert!(text.contains("Othello"));
}

#[test]
fn knights_figures_well_formed_and_checked() {
    let mut cfg = SweepCfg::quick();
    cfg.procs = vec![1, 2, 4, 6];
    let (time_fig, speed_fig) = sweeps::knights_figures(&Platform::sunos_sparc(), &cfg);
    assert_eq!(time_fig.id, "fig19");
    let results = checks::check_knights(&speed_fig);
    assert!(!results.is_empty());
    for c in &results {
        assert!(c.pass, "{}: {}", c.name, c.detail);
    }
}

#[test]
fn ablation_org_quick_check() {
    let mut cfg = SweepCfg::quick();
    cfg.procs = vec![1, 3];
    let fig = ablation_org(&Platform::linux_pentium2(), &cfg);
    for c in checks::check_org(&fig) {
        assert!(c.pass, "{}: {}", c.name, c.detail);
    }
}

#[test]
fn tables_render() {
    let t1 = sweeps::table1();
    assert!(t1.contains("SparcStation"));
    assert!(t1.contains("AIX"));
    assert!(t1.contains("Linux"));
    let t2 = sweeps::table2(12);
    assert!(t2.contains("12"));
    // Virtual-cluster rule visible: 7 processors → 6 machines, 2 kernels.
    assert!(t2.lines().any(|l| {
        let f: Vec<&str> = l.split_whitespace().collect();
        f.first() == Some(&"7") && f.get(1) == Some(&"6") && f.get(2) == Some(&"2")
    }));
}
