//! Acceptance tests for the observability subsystem (ISSUE tentpole):
//! a real Gauss-Seidel run on the paper's SunOS cluster must export
//! schema-valid metrics JSONL and a Perfetto-loadable Chrome trace, both
//! byte-identical across runs, and the per-PE stats cells must roll up to
//! exactly the legacy global [`KernelStats`] totals.

use std::collections::HashMap;

use dse::apps::gauss_seidel;
use dse::prelude::*;

// ---------------------------------------------------------------------------
// A minimal JSON parser — enough to validate the exporters without serde.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(HashMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
    fn as_arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            other => panic!("expected array, got {other:?}"),
        }
    }
    fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
    fn as_num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

fn parse_json(s: &str) -> Json {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    let v = p.value();
    p.ws();
    assert_eq!(p.i, p.b.len(), "trailing garbage after JSON value");
    v
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && (self.b[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }
    fn eat(&mut self, c: u8) {
        self.ws();
        assert!(
            self.i < self.b.len() && self.b[self.i] == c,
            "expected '{}' at byte {}",
            c as char,
            self.i
        );
        self.i += 1;
    }
    fn peek(&mut self) -> u8 {
        self.ws();
        assert!(self.i < self.b.len(), "unexpected end of JSON");
        self.b[self.i]
    }
    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }
    fn lit(&mut self, word: &str, v: Json) -> Json {
        self.ws();
        assert!(
            self.b[self.i..].starts_with(word.as_bytes()),
            "bad literal at byte {}",
            self.i
        );
        self.i += word.len();
        v
    }
    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut m = HashMap::new();
        if self.peek() == b'}' {
            self.i += 1;
            return Json::Obj(m);
        }
        loop {
            let k = self.string();
            self.eat(b':');
            m.insert(k, self.value());
            match self.peek() {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Json::Obj(m);
                }
                c => panic!("expected ',' or '}}', got '{}'", c as char),
            }
        }
    }
    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut v = Vec::new();
        if self.peek() == b']' {
            self.i += 1;
            return Json::Arr(v);
        }
        loop {
            v.push(self.value());
            match self.peek() {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Json::Arr(v);
                }
                c => panic!("expected ',' or ']', got '{}'", c as char),
            }
        }
    }
    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut s = String::new();
        loop {
            let c = self.b[self.i];
            self.i += 1;
            match c {
                b'"' => return s,
                b'\\' => {
                    let e = self.b[self.i];
                    self.i += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4]).unwrap();
                            let cp = u32::from_str_radix(hex, 16).unwrap();
                            s.push(char::from_u32(cp).unwrap());
                            self.i += 4;
                        }
                        other => panic!("bad escape \\{}", other as char),
                    }
                }
                other => s.push(other as char),
            }
        }
    }
    fn number(&mut self) -> Json {
        self.ws();
        let start = self.i;
        while self.i < self.b.len()
            && matches!(
                self.b[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        Json::Num(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number '{text}'")),
        )
    }
}

// ---------------------------------------------------------------------------
// The reference run: gauss --platform sunos --procs 6 (paper setup).
// ---------------------------------------------------------------------------

fn reference_run() -> RunResult {
    let program =
        DseProgram::new(Platform::sunos_sparc()).with_config(DseConfig::paper().with_tracing(true));
    let params = gauss_seidel::GaussSeidelParams::paper(120);
    let (run, sol) = gauss_seidel::solve_parallel(&program, 6, params);
    assert!(sol.delta <= params.eps, "solver must converge");
    run
}

#[test]
fn per_pe_rollup_equals_legacy_global_stats() {
    let run = reference_run();
    assert_eq!(run.per_pe_stats.len(), 6);
    let mut rolled = dse::kernel::KernelStats::default();
    for ks in &run.per_pe_stats {
        rolled.merge(ks);
    }
    assert_eq!(
        rolled, run.stats,
        "per-PE cells must roll up to the global snapshot"
    );
    // The work actually spread: more than one PE moved traffic.
    let active = run.per_pe_stats.iter().filter(|s| s.messages > 0).count();
    assert!(active > 1, "expected multiple active PEs, saw {active}");
}

#[test]
fn metrics_jsonl_schema_and_content() {
    let run = reference_run();
    let jsonl = run.metrics_jsonl();
    let mut counters = 0usize;
    let mut per_pe_kernel_counters = 0usize;
    let mut remote_read_hist = None;
    for line in jsonl.lines() {
        let v = parse_json(line);
        let ty = v.get("type").expect("every metric has a type").as_str();
        for key in ["subsystem", "name", "pe", "machine"] {
            assert!(v.get(key).is_some(), "metric line missing '{key}': {line}");
        }
        match ty {
            "counter" => {
                counters += 1;
                if v.get("subsystem").unwrap().as_str() == "kernel"
                    && v.get("pe") != Some(&Json::Null)
                {
                    per_pe_kernel_counters += 1;
                    assert!(
                        v.get("machine") != Some(&Json::Null),
                        "per-PE kernel counters carry their machine: {line}"
                    );
                }
            }
            "gauge" => {}
            "histogram" => {
                for key in [
                    "count", "sum", "min", "max", "p50", "p90", "p99", "p999", "buckets",
                ] {
                    assert!(v.get(key).is_some(), "histogram missing '{key}': {line}");
                }
                let count = v.get("count").unwrap().as_num() as u64;
                let bucket_total: u64 = v
                    .get("buckets")
                    .unwrap()
                    .as_arr()
                    .iter()
                    .map(|b| b.as_arr()[1].as_num() as u64)
                    .sum();
                assert_eq!(bucket_total, count, "bucket counts must sum to count");
                if v.get("subsystem").unwrap().as_str() == "gm"
                    && v.get("name").unwrap().as_str() == "remote_read_ns"
                    && remote_read_hist.is_none()
                {
                    remote_read_hist = Some(v.clone());
                }
            }
            other => panic!("unknown metric type '{other}'"),
        }
    }
    assert!(counters > 0, "expected counters in the export");
    assert!(
        per_pe_kernel_counters >= 6 * 10,
        "expected the per-PE kernel-stats rollup, saw {per_pe_kernel_counters}"
    );
    let h = remote_read_hist.expect("remote GM read latency histogram must be exported");
    let p50 = h.get("p50").unwrap().as_num();
    let p99 = h.get("p99").unwrap().as_num();
    let p999 = h.get("p999").unwrap().as_num();
    let min = h.get("min").unwrap().as_num();
    let max = h.get("max").unwrap().as_num();
    assert!(h.get("count").unwrap().as_num() > 0.0);
    assert!(
        min <= p50 && p50 <= p99 && p99 <= p999 && p999 <= max,
        "quantile ordering"
    );
}

#[test]
fn chrome_trace_has_per_process_and_bus_tracks() {
    let run = reference_run();
    let trace = run.chrome_trace_json();
    let doc = parse_json(&trace);
    let events = doc.get("traceEvents").expect("traceEvents").as_arr();
    assert!(!events.is_empty());

    // One named thread track under pid 0 per simulated process.
    let nprocs_in_trace = run.report.trace.as_ref().unwrap().proc_names.len();
    let proc_tracks = events
        .iter()
        .filter(|e| {
            e.get("ph").map(Json::as_str) == Some("M")
                && e.get("name").map(Json::as_str) == Some("thread_name")
                && e.get("pid").map(Json::as_num) == Some(0.0)
        })
        .count();
    assert_eq!(
        proc_tracks, nprocs_in_trace,
        "one track per simulated process"
    );

    // A bus-utilization counter track under the network pid.
    let bus_samples = events
        .iter()
        .filter(|e| {
            e.get("ph").map(Json::as_str) == Some("C")
                && e.get("name").map(Json::as_str) == Some("bus_utilization")
        })
        .count();
    assert!(bus_samples > 0, "expected bus_utilization counter samples");
    assert_eq!(bus_samples, run.bus_intervals.len());

    // GM-op span slices under pid 1, at least one per active PE.
    let span_slices = events
        .iter()
        .filter(|e| {
            e.get("ph").map(Json::as_str) == Some("X")
                && e.get("pid").map(Json::as_num) == Some(1.0)
        })
        .count();
    assert_eq!(span_slices, run.spans.len());
    assert!(span_slices > 0, "expected completed GM-op spans");
}

#[test]
fn exports_are_deterministic_across_runs() {
    let a = reference_run();
    let b = reference_run();
    assert_eq!(
        a.metrics_jsonl(),
        b.metrics_jsonl(),
        "metrics JSONL must be byte-identical"
    );
    assert_eq!(
        a.metrics_csv(),
        b.metrics_csv(),
        "metrics CSV must be byte-identical"
    );
    assert_eq!(
        a.chrome_trace_json(),
        b.chrome_trace_json(),
        "Chrome trace must be byte-identical"
    );
}

#[test]
fn spans_are_consistent_with_stats() {
    let run = reference_run();
    for s in &run.spans {
        assert!(s.close_ns >= s.open_ns, "span must close after opening");
        assert!(
            s.wire_ns + s.service_ns <= s.total_ns(),
            "wire + service cannot exceed the span: {s:?}"
        );
    }
    // Every remote read span corresponds to a counted remote read.
    let remote_reads: u64 = run.per_pe_stats.iter().map(|s| s.gm_remote_reads).sum();
    let read_spans = run
        .spans
        .iter()
        .filter(|s| s.kind == dse::obs::SpanKind::GmRead)
        .count() as u64;
    assert_eq!(read_spans, remote_reads, "one GmRead span per remote read");
}
