//! Parallel Othello search — the paper's §4.3 workload as a standalone
//! application, showing the depth/communication trade-off.
//!
//! ```sh
//! cargo run --release --example game_search
//! ```

use dse::apps::othello::{search_parallel, search_sequential, OthelloParams};
use dse::prelude::*;

fn square_name(sq: u8) -> String {
    format!("{}{}", (b'a' + sq % 8) as char, sq / 8 + 1)
}

fn main() {
    let platform = Platform::linux_pentium2();
    println!(
        "Searching an Othello midgame position on a simulated {} cluster",
        platform.machine
    );
    println!(
        "{:>6} {:>6} {:>10} {:>12} {:>12} {:>9}",
        "depth", "procs", "best move", "T(1) [s]", "T(p) [s]", "speedup"
    );
    let program = DseProgram::new(platform);
    for depth in [3, 5, 7] {
        let params = OthelloParams::paper(depth);
        let (mv, score, _nodes) = search_sequential(&params);
        let (base, best1) = search_parallel(&program, 1, params);
        assert_eq!(best1, (mv, score));
        for procs in [4, 8] {
            let (run, best) = search_parallel(&program, procs, params);
            assert_eq!(best, (mv, score), "parallel search must agree");
            println!(
                "{depth:>6} {procs:>6} {:>7}({:+}) {:>12.4} {:>12.4} {:>9.2}",
                square_name(mv),
                score,
                base.secs(),
                run.secs(),
                base.secs() / run.secs()
            );
        }
    }
    println!();
    println!("Shallow searches are all communication (no speedup); deeper");
    println!("searches amortize the task distribution, as in the paper.");
}
