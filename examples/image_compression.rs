//! DCT-II image compression across block sizes — the paper's §4.2 workload
//! as a standalone application.
//!
//! ```sh
//! cargo run --release --example image_compression
//! ```

use dse::apps::dct::{compress_parallel, compress_sequential, decompress, DctParams};
use dse::apps::image::{psnr, Image};
use dse::prelude::*;

fn main() {
    let platform = Platform::aix_rs6000();
    println!(
        "Compressing a 512x512 image on a simulated {} cluster",
        platform.machine
    );
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>9} {:>10}",
        "block", "procs", "T(1) [s]", "T(p) [s]", "speedup", "PSNR [dB]"
    );
    for block in [4, 8, 16, 32] {
        let params = DctParams::paper(block);
        let program = DseProgram::new(platform.clone());
        let (base, reference) = compress_parallel(&program, 1, params);
        // Verify against the sequential implementation and reconstruct.
        assert_eq!(reference, compress_sequential(&params));
        let original = Image::synthetic(params.size, params.seed);
        let quality = psnr(&original, &decompress(&reference));
        for procs in [4, 8] {
            let (run, out) = compress_parallel(&program, procs, params);
            assert_eq!(out, reference, "parallel output must be identical");
            println!(
                "{:>4}x{:<2} {:>6} {:>12.4} {:>12.4} {:>9.2} {:>10.1}",
                block,
                block,
                procs,
                base.secs(),
                run.secs(),
                base.secs() / run.secs(),
                quality
            );
        }
    }
    println!();
    println!("Small blocks mean many fine-grain tasks: communication frequency");
    println!("eats the speedup, exactly as the paper reports for 4x4.");
}
