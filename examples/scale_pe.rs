//! Many-PE scaling probe for the poll-driven task scheduler: one process,
//! 64 / 256 / 1024 PEs, all kernels multiplexed on an
//! `available_parallelism`-sized worker pool instead of one OS thread per
//! kernel.
//!
//! Each PE publishes its rank into a blocked GM array, reads its right
//! neighbor's slot back over the wire, then drains a GM fetch-add work
//! queue of `2 * PEs` jobs — so GM traffic grows with the cluster and the
//! ops/sec figure reflects kernel service throughput, not app compute.
//! The run asserts exactly-once job delivery at every size and prints the
//! JSON document committed as `bench_results/BENCH_scale.json`:
//!
//! ```sh
//! cargo run --release --example scale_pe > bench_results/BENCH_scale.json
//! ```
//!
//! A thread-per-PE run at the smallest size rides along as the baseline:
//! it needs one kernel thread per PE, while the task scheduler holds the
//! kernel-side thread count flat as the PE count grows 16x.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use dse::prelude::*;

struct Point {
    pes: usize,
    kernel_threads: usize,
    wall_ns: u64,
    gm_ops: u64,
    gm_ops_per_sec: u64,
}

/// How many kernel-side threads a run at `pes` needs under `sched`
/// (mirrors the scheduler's pool sizing; threads-per-PE needs `pes`).
fn kernel_threads(pes: usize, sched: SchedulerKind) -> usize {
    match sched {
        SchedulerKind::Threads => pes,
        SchedulerKind::Tasks => thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(pes)
            .max(1),
    }
}

fn measure(pes: usize, sched: SchedulerKind) -> Point {
    let jobs = 2 * pes as i64;
    let claimed = AtomicU64::new(0);
    let run = LiveRunner::new(pes).scheduler(sched).run(|ctx| {
        let n = ctx.nprocs();
        let arr = GmArray::<u64>::alloc(ctx, n, Distribution::Blocked);
        arr.set(ctx, ctx.rank() as usize, ctx.rank() as u64 + 1);
        ctx.barrier();
        let right = (ctx.rank() as usize + 1) % n;
        let got = arr.read(ctx, right, 1);
        assert_eq!(got[0], right as u64 + 1, "neighbor slot read back wrong");
        let queue = GmCounter::alloc(ctx);
        ctx.barrier();
        loop {
            let j = queue.next(ctx);
            if j >= jobs {
                break;
            }
            claimed.fetch_add(j as u64 + 1, Ordering::Relaxed);
        }
    });
    // Exactly-once delivery: every job index was claimed by one PE.
    let want = (jobs as u64) * (jobs as u64 + 1) / 2;
    assert_eq!(
        claimed.load(Ordering::Relaxed),
        want,
        "{pes} PEs: jobs lost or duplicated"
    );
    let gm_ops = run.metrics.counter_sum_over_pes("kernel", "gm_ops");
    let wall_ns = run.elapsed.as_nanos() as u64;
    Point {
        pes,
        kernel_threads: kernel_threads(pes, sched),
        wall_ns,
        gm_ops,
        gm_ops_per_sec: (gm_ops as u128 * 1_000_000_000 / run.elapsed.as_nanos().max(1)) as u64,
    }
}

fn print_point(p: &Point, comma: &str) {
    println!(
        "    {{\"pes\": {}, \"kernel_threads\": {}, \"pes_per_kernel_thread\": {:.1}, \
         \"wall_ns\": {}, \"gm_ops\": {}, \"gm_ops_per_sec\": {}}}{}",
        p.pes,
        p.kernel_threads,
        p.pes as f64 / p.kernel_threads as f64,
        p.wall_ns,
        p.gm_ops,
        p.gm_ops_per_sec,
        comma
    );
}

fn main() {
    let sizes = [64usize, 256, 1024];
    let baseline = measure(sizes[0], SchedulerKind::Threads);
    let points: Vec<Point> = sizes
        .iter()
        .map(|&pes| measure(pes, SchedulerKind::Tasks))
        .collect();
    println!("{{");
    println!("  \"schema\": \"dse-scale/v1\",");
    println!("  \"workload\": \"GM neighbor exchange + fetch-add work queue of 2*PEs jobs\",");
    println!("  \"transport\": \"channel\",");
    println!("  \"baseline_threads\": [");
    print_point(&baseline, "");
    println!("  ],");
    println!("  \"tasks\": [");
    for (i, p) in points.iter().enumerate() {
        print_point(p, if i + 1 < points.len() { "," } else { "" });
    }
    println!("  ]");
    println!("}}");
    // The point of the refactor: PE count grew 16x, the kernel-side
    // thread bill did not.
    let largest = points.last().unwrap();
    assert!(
        largest.kernel_threads < largest.pes / 4,
        "task scheduler still needs {} kernel threads for {} PEs",
        largest.kernel_threads,
        largest.pes
    );
}
