//! Quickstart: write one SPMD program, run it on a simulated 1999 cluster
//! *and* on real threads, and look at the single-system image of it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dse::prelude::*;

/// The program: every rank fills its slice of a shared table, then rank 0
/// sums it. Written once against `ParallelApi`, it runs on both engines.
fn program<A: ParallelApi>(ctx: &mut A) -> Option<f64> {
    let n = 1_000;
    let table = GmArray::<f64>::alloc(ctx, n, Distribution::Blocked);
    let p = ctx.nprocs();
    let chunk = n.div_ceil(p);
    let rank = ctx.rank() as usize;
    let lo = (rank * chunk).min(n);
    let hi = ((rank + 1) * chunk).min(n);
    let mine: Vec<f64> = (lo..hi).map(|i| (i as f64).sqrt()).collect();
    // Real work happens in Rust; `compute` tells the simulated platform
    // how much machine time it represents.
    ctx.compute(Work::flops(30 * (hi - lo) as u64));
    table.write(ctx, lo, &mine);
    ctx.barrier();
    if ctx.rank() == 0 {
        let all = table.read(ctx, 0, n);
        Some(all.iter().sum())
    } else {
        None
    }
}

fn main() {
    println!("--- simulated cluster (SunOS / SparcStation, 10 Mbps Ethernet) ---");
    for p in [1, 2, 4, 8] {
        let result = DseProgram::new(Platform::sunos_sparc()).run(p, |ctx| {
            if let Some(sum) = program(ctx) {
                println!("  rank 0 computed sum = {sum:.3}");
            }
        });
        println!(
            "  p={p:>2}: simulated time {}  (messages: {}, wire bytes: {})",
            result.elapsed, result.stats.messages, result.net_wire_bytes
        );
    }

    println!("--- same program on real threads (live engine) ---");
    let live = LiveRunner::new(4).run(|ctx| {
        if let Some(sum) = program(ctx) {
            println!("  rank 0 computed sum = {sum:.3}");
        }
    });
    println!("  p=4: wall-clock {:?}", live.elapsed);
}
