//! Causal-tracing overhead measurement: wall-clock time of a fixed
//! Gauss-Seidel solve on the channel-live engine with and without
//! `LiveRunConfig::tracing`, at 2 and 4 PEs.
//!
//! Tracing adds span records on every causal hop and a 17-byte trace
//! context to every framed message, so its cost shows up directly in the
//! live run's wall clock. The budget is < 5 % added wall time; each
//! configuration is measured several times and the minimum kept (live
//! wall clocks are noisy upward, never downward). The example asserts
//! the budget and prints the JSON document committed as
//! `bench_results/trace_overhead.json`:
//!
//! ```sh
//! cargo run --release --example trace_overhead > bench_results/trace_overhead.json
//! ```

use std::time::Instant;

use dse::apps::gauss_seidel::{self, GaussSeidelParams};
use dse::live::LiveRunner;

fn wall_ns(procs: usize, tracing: bool) -> u64 {
    // Fixed sweep count (eps = 0 never converges early): every run does
    // identical work, so the min-of-reps wall clocks are comparable.
    let params = GaussSeidelParams {
        eps: 0.0,
        max_iters: 48,
        ..GaussSeidelParams::paper(256)
    };
    let started = Instant::now();
    LiveRunner::new(procs)
        .tracing(tracing)
        .try_run(move |ctx| {
            gauss_seidel::body(ctx, &params);
        })
        .expect("live run completes");
    started.elapsed().as_nanos() as u64
}

/// Median of `reps` interleaved base/traced measurements (medians shrug
/// off both slow outliers and the occasional anomalously fast run that
/// would skew a min-of-reps).
fn measure(procs: usize, reps: usize) -> (u64, u64) {
    // Warm both paths once so neither pays first-run thread spawn costs.
    wall_ns(procs, false);
    wall_ns(procs, true);
    let mut base = Vec::with_capacity(reps);
    let mut traced = Vec::with_capacity(reps);
    for _ in 0..reps {
        base.push(wall_ns(procs, false));
        traced.push(wall_ns(procs, true));
    }
    base.sort_unstable();
    traced.sort_unstable();
    (base[reps / 2], traced[reps / 2])
}

fn main() {
    let budget_pct = 5.0;
    let reps = 15;
    println!("{{");
    println!("  \"workload\": \"gauss-seidel N=256 x 48 sweeps, live engine, channel transport\",");
    println!("  \"reps\": {reps},");
    println!("  \"budget_pct\": {budget_pct},");
    println!("  \"results\": [");
    let mut overheads = Vec::new();
    let procs_list = [2usize, 4];
    for (i, procs) in procs_list.iter().enumerate() {
        let (base, traced) = measure(*procs, reps);
        let pct = (traced as f64 - base as f64) * 100.0 / base as f64;
        overheads.push((*procs, pct));
        let comma = if i + 1 < procs_list.len() { "," } else { "" };
        println!(
            "    {{\"procs\": {procs}, \"base_ns\": {base}, \"traced_ns\": {traced}, \
             \"overhead_pct\": {pct:.4}}}{comma}"
        );
    }
    println!("  ]");
    println!("}}");
    for (procs, pct) in overheads {
        assert!(
            pct < budget_pct,
            "tracing overhead at {procs} PEs is {pct:.2}%, budget is {budget_pct}%"
        );
    }
}
