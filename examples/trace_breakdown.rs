//! Where did the time go? — the paper's explanations, measured.
//!
//! Runs the DCT workload at fine (4×4) and coarse (32×32) grain with
//! execution tracing, and prints per-process time breakdowns plus an ASCII
//! cluster timeline. The fine-grain run drowns in communication wait; the
//! coarse-grain run computes.
//!
//! ```sh
//! cargo run --release --example trace_breakdown
//! ```

use dse::apps::dct::{compress_parallel, DctParams};
use dse::prelude::*;
use dse_trace::{analyze, gantt};

fn show(block: usize) {
    let params = DctParams {
        size: 256,
        block,
        keep: 0.25,
        seed: 7,
    };
    let program =
        DseProgram::new(Platform::sunos_sparc()).with_config(DseConfig::paper().with_tracing(true));
    let (run, _) = compress_parallel(&program, 4, params);
    let trace = run.report.trace.as_ref().expect("tracing enabled");
    let analysis = analyze(trace, run.report.end_time);
    println!(
        "=== DCT {block}x{block} on 4 processors (simulated {}) ===",
        run.elapsed
    );
    print!("{}", analysis.render());
    let (c, q, r) = analysis.group_fractions("rank");
    println!(
        "worker ranks aggregate: {:.0}% compute, {:.0}% cpu-queue, {:.0}% recv-wait",
        c * 100.0,
        q * 100.0,
        r * 100.0
    );
    println!("{}", gantt(trace, run.report.end_time, 72));
}

fn main() {
    show(4);
    show(32);
    println!("4x4: many tiny tasks, each a fetch-add + image read + result");
    println!("write — the ranks mostly wait on messages (the paper's");
    println!("\"communication frequency\"). 32x32: the same bytes in a few");
    println!("big tasks — the ranks compute.");
}
