//! Split-phase GM benchmark: the paper's Gauss-Seidel solver refreshed
//! row-at-a-time, blocking vs split-phase, on the paper's 10 Mbps
//! shared-bus cluster.
//!
//! Both variants read exactly the same rows — the solutions are
//! bit-identical — but the blocking variant pays one request/response
//! round trip per remote row while the split-phase variant issues every
//! row with `gm_read_nb` first, letting the runtime coalesce adjacent
//! rows with the same home into batched requests and pipeline the rest.
//! The example asserts the tentpole acceptance bar (at least 20 % fewer
//! GM request messages and a lower simulated runtime) and prints the
//! JSON document committed as `bench_results/gm_pipeline.json`:
//!
//! ```sh
//! cargo run --release --example gm_pipeline > bench_results/gm_pipeline.json
//! ```
//!
//! A second section benchmarks the directory-based GM cache on a
//! read-mostly shared-table workload (scattered single-element lookups
//! against a home-node table with a trickle of writes): the cache must
//! cut GM request messages measurably versus running uncached, and
//! release consistency must cut invalidation rounds by at least 30 %
//! versus write-invalidate while producing the identical checksum.

use std::sync::{Arc, Mutex};

use dse::apps::gauss_seidel::{self, GaussSeidelParams, RefreshMode};
use dse::prelude::*;

struct ModeResult {
    label: &'static str,
    elapsed_ns: u64,
    gm_request_msgs: u64,
    gm_coalesced: u64,
    net_frames: u64,
    x: Vec<f64>,
}

fn run_mode(program: &DseProgram, procs: usize, mode: RefreshMode) -> ModeResult {
    let params = GaussSeidelParams::paper(240);
    let (run, sol) = gauss_seidel::solve_parallel_with(program, procs, params, mode);
    assert!(sol.delta <= params.eps, "{mode:?} did not converge");
    ModeResult {
        label: match mode {
            RefreshMode::Bulk => "bulk",
            RefreshMode::RowBlocking => "row-blocking",
            RefreshMode::RowPipelined => "row-pipelined",
        },
        elapsed_ns: run.elapsed.as_nanos(),
        gm_request_msgs: run.stats.gm_request_msgs,
        gm_coalesced: run.stats.gm_coalesced,
        net_frames: run.net_frames,
        x: sol.x,
    }
}

struct CoherenceResult {
    label: &'static str,
    elapsed_ns: u64,
    gm_request_msgs: u64,
    invalidation_rounds: u64,
    dir_hits: u64,
    dir_invals: u64,
    rc_deferred_invals: u64,
    checksum: i64,
}

/// Read-mostly shared table: a 1024-entry table homed on node 0, six
/// rounds of (rank 0 scatters 16 updates) → barrier → (every rank
/// refreshes the whole table, then does 512 scattered single-element
/// lookups) → barrier. All coherence modes must compute the same
/// checksum; they differ only in traffic.
fn run_coherence(label: &'static str, procs: usize, config: DseConfig) -> CoherenceResult {
    const TABLE: usize = 1024;
    const ROUNDS: u64 = 6;
    let total = Arc::new(Mutex::new(0i64));
    let run = DseProgram::new(Platform::sunos_sparc())
        .with_config(config)
        .run(procs, {
            let total = Arc::clone(&total);
            move |ctx| {
                let table =
                    GmArray::<u64>::alloc(ctx, TABLE, Distribution::OnNode(dse::msg::NodeId(0)));
                let sum = GmCounter::alloc(ctx);
                let me = ctx.rank() as u64;
                ctx.barrier();
                let mut local = 0u64;
                for round in 0..ROUNDS {
                    if ctx.rank() == 0 {
                        for i in 0..16u64 {
                            let idx = (i * 61 + round * 17) as usize % TABLE;
                            table.set(ctx, idx, round * 1000 + i);
                        }
                    }
                    ctx.barrier();
                    // Whole-table refresh: block-covering reads are what take
                    // a directory lease and install a local replica...
                    let snap = table.read(ctx, 0, TABLE);
                    local = snap
                        .iter()
                        .fold(local, |acc, &v| acc.wrapping_mul(31).wrapping_add(v));
                    // ...which the scattered lookups are then served from.
                    for k in 0..512u64 {
                        let idx = (k * 31 + me) as usize % TABLE;
                        local = local.wrapping_mul(31).wrapping_add(table.get(ctx, idx));
                    }
                    ctx.barrier();
                }
                sum.fetch_add(ctx, local as i64);
                ctx.barrier();
                if ctx.rank() == 0 {
                    *total.lock().unwrap() = sum.load(ctx);
                }
            }
        });
    let checksum = *total.lock().unwrap();
    CoherenceResult {
        label,
        elapsed_ns: run.elapsed.as_nanos(),
        gm_request_msgs: run.stats.gm_request_msgs,
        invalidation_rounds: run.stats.invalidation_rounds,
        dir_hits: run.stats.dir_hits,
        dir_invals: run.stats.dir_invals,
        rc_deferred_invals: run.stats.rc_deferred_invals,
        checksum,
    }
}

fn main() {
    let procs = 4;
    let program = DseProgram::new(Platform::sunos_sparc()).with_config(DseConfig::paper());
    let modes = [
        RefreshMode::RowBlocking,
        RefreshMode::RowPipelined,
        RefreshMode::Bulk,
    ];
    let results: Vec<ModeResult> = modes
        .iter()
        .map(|&m| run_mode(&program, procs, m))
        .collect();
    let blocking = &results[0];
    let pipelined = &results[1];
    assert_eq!(
        blocking.x, pipelined.x,
        "refresh modes must produce bit-identical solutions"
    );
    assert_eq!(results[2].x, pipelined.x);
    let msg_reduction_pct = (blocking.gm_request_msgs - pipelined.gm_request_msgs) as f64 * 100.0
        / blocking.gm_request_msgs as f64;
    let speedup = blocking.elapsed_ns as f64 / pipelined.elapsed_ns as f64;
    println!("{{");
    println!("  \"workload\": \"gauss-seidel N=240, row-wise refresh, SunOS/SPARC, {procs} PEs\",");
    println!("  \"network\": \"paper 10 Mbps shared-bus Ethernet\",");
    println!("  \"modes\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        println!(
            "    {{\"mode\": \"{}\", \"elapsed_ns\": {}, \"gm_request_msgs\": {}, \
             \"gm_coalesced\": {}, \"net_frames\": {}}}{comma}",
            r.label, r.elapsed_ns, r.gm_request_msgs, r.gm_coalesced, r.net_frames
        );
    }
    println!("  ],");
    println!("  \"request_msg_reduction_pct\": {msg_reduction_pct:.2},");
    println!("  \"pipelined_speedup_vs_blocking\": {speedup:.3},");

    let coherence = [
        run_coherence("uncached", procs, DseConfig::paper()),
        run_coherence("cached-wi", procs, DseConfig::paper().with_gm_cache(true)),
        run_coherence(
            "cached-rc",
            procs,
            DseConfig::paper()
                .with_gm_cache(true)
                .with_gm_mode(dse::live::GmMode::ReleaseConsistency),
        ),
    ];
    let (uncached, wi, rc) = (&coherence[0], &coherence[1], &coherence[2]);
    let cache_msg_reduction_pct = (uncached.gm_request_msgs - wi.gm_request_msgs) as f64 * 100.0
        / uncached.gm_request_msgs as f64;
    let inval_round_reduction_pct = (wi.invalidation_rounds - rc.invalidation_rounds) as f64
        * 100.0
        / wi.invalidation_rounds as f64;
    println!(
        "  \"coherence_workload\": \"shared-table lookups, 1024 entries, 6 rounds, {procs} PEs\","
    );
    println!("  \"coherence\": [");
    for (i, r) in coherence.iter().enumerate() {
        let comma = if i + 1 < coherence.len() { "," } else { "" };
        println!(
            "    {{\"mode\": \"{}\", \"elapsed_ns\": {}, \"gm_request_msgs\": {}, \
             \"invalidation_rounds\": {}, \"dir_hits\": {}, \"dir_invals\": {}, \
             \"rc_deferred_invals\": {}}}{comma}",
            r.label,
            r.elapsed_ns,
            r.gm_request_msgs,
            r.invalidation_rounds,
            r.dir_hits,
            r.dir_invals,
            r.rc_deferred_invals
        );
    }
    println!("  ],");
    println!("  \"cache_request_msg_reduction_pct\": {cache_msg_reduction_pct:.2},");
    println!("  \"rc_invalidation_round_reduction_pct\": {inval_round_reduction_pct:.2}");
    println!("}}");
    assert!(
        msg_reduction_pct >= 20.0,
        "split-phase must cut GM request messages by >= 20% (got {msg_reduction_pct:.2}%)"
    );
    assert!(
        pipelined.elapsed_ns < blocking.elapsed_ns,
        "split-phase must lower the simulated runtime"
    );
    assert!(
        pipelined.gm_coalesced > 0,
        "row-pipelined refresh must exercise write coalescing"
    );
    assert_eq!(
        uncached.checksum, wi.checksum,
        "the cache must not change results"
    );
    assert_eq!(
        uncached.checksum, rc.checksum,
        "release consistency must not change results at sync points"
    );
    assert!(
        wi.dir_hits > 0 && wi.dir_invals > 0,
        "write-invalidate must exercise the directory (hits {}, invals {})",
        wi.dir_hits,
        wi.dir_invals
    );
    assert!(
        cache_msg_reduction_pct >= 20.0,
        "the directory cache must measurably cut GM request messages on a read-mostly \
         workload (got {cache_msg_reduction_pct:.2}%)"
    );
    assert!(
        rc.rc_deferred_invals > 0,
        "release consistency must defer invalidations on shared blocks"
    );
    assert!(
        inval_round_reduction_pct >= 30.0,
        "release consistency must cut invalidation rounds by >= 30% \
         (got {inval_round_reduction_pct:.2}%)"
    );
}
