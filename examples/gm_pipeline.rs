//! Split-phase GM benchmark: the paper's Gauss-Seidel solver refreshed
//! row-at-a-time, blocking vs split-phase, on the paper's 10 Mbps
//! shared-bus cluster.
//!
//! Both variants read exactly the same rows — the solutions are
//! bit-identical — but the blocking variant pays one request/response
//! round trip per remote row while the split-phase variant issues every
//! row with `gm_read_nb` first, letting the runtime coalesce adjacent
//! rows with the same home into batched requests and pipeline the rest.
//! The example asserts the tentpole acceptance bar (at least 20 % fewer
//! GM request messages and a lower simulated runtime) and prints the
//! JSON document committed as `bench_results/gm_pipeline.json`:
//!
//! ```sh
//! cargo run --release --example gm_pipeline > bench_results/gm_pipeline.json
//! ```

use dse::apps::gauss_seidel::{self, GaussSeidelParams, RefreshMode};
use dse::prelude::*;

struct ModeResult {
    label: &'static str,
    elapsed_ns: u64,
    gm_request_msgs: u64,
    gm_coalesced: u64,
    net_frames: u64,
    x: Vec<f64>,
}

fn run_mode(program: &DseProgram, procs: usize, mode: RefreshMode) -> ModeResult {
    let params = GaussSeidelParams::paper(240);
    let (run, sol) = gauss_seidel::solve_parallel_with(program, procs, params, mode);
    assert!(sol.delta <= params.eps, "{mode:?} did not converge");
    ModeResult {
        label: match mode {
            RefreshMode::Bulk => "bulk",
            RefreshMode::RowBlocking => "row-blocking",
            RefreshMode::RowPipelined => "row-pipelined",
        },
        elapsed_ns: run.elapsed.as_nanos(),
        gm_request_msgs: run.stats.gm_request_msgs,
        gm_coalesced: run.stats.gm_coalesced,
        net_frames: run.net_frames,
        x: sol.x,
    }
}

fn main() {
    let procs = 4;
    let program = DseProgram::new(Platform::sunos_sparc()).with_config(DseConfig::paper());
    let modes = [
        RefreshMode::RowBlocking,
        RefreshMode::RowPipelined,
        RefreshMode::Bulk,
    ];
    let results: Vec<ModeResult> = modes
        .iter()
        .map(|&m| run_mode(&program, procs, m))
        .collect();
    let blocking = &results[0];
    let pipelined = &results[1];
    assert_eq!(
        blocking.x, pipelined.x,
        "refresh modes must produce bit-identical solutions"
    );
    assert_eq!(results[2].x, pipelined.x);
    let msg_reduction_pct = (blocking.gm_request_msgs - pipelined.gm_request_msgs) as f64 * 100.0
        / blocking.gm_request_msgs as f64;
    let speedup = blocking.elapsed_ns as f64 / pipelined.elapsed_ns as f64;
    println!("{{");
    println!("  \"workload\": \"gauss-seidel N=240, row-wise refresh, SunOS/SPARC, {procs} PEs\",");
    println!("  \"network\": \"paper 10 Mbps shared-bus Ethernet\",");
    println!("  \"modes\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        println!(
            "    {{\"mode\": \"{}\", \"elapsed_ns\": {}, \"gm_request_msgs\": {}, \
             \"gm_coalesced\": {}, \"net_frames\": {}}}{comma}",
            r.label, r.elapsed_ns, r.gm_request_msgs, r.gm_coalesced, r.net_frames
        );
    }
    println!("  ],");
    println!("  \"request_msg_reduction_pct\": {msg_reduction_pct:.2},");
    println!("  \"pipelined_speedup_vs_blocking\": {speedup:.3}");
    println!("}}");
    assert!(
        msg_reduction_pct >= 20.0,
        "split-phase must cut GM request messages by >= 20% (got {msg_reduction_pct:.2}%)"
    );
    assert!(
        pipelined.elapsed_ns < blocking.elapsed_ns,
        "split-phase must lower the simulated runtime"
    );
    assert!(
        pipelined.gm_coalesced > 0,
        "row-pipelined refresh must exercise write coalescing"
    );
}
