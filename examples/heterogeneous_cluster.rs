//! The paper's future work, executed: one parallel program on a cluster
//! mixing all three Table-1 platforms.
//!
//! Statically partitioned work (Gauss-Seidel row strips) is gated by the
//! slowest machine; dynamically dealt work (Knight's-Tour jobs) flows to
//! the fast machines. Both effects are visible below.
//!
//! ```sh
//! cargo run --release --example heterogeneous_cluster
//! ```

use dse::apps::{gauss_seidel, knights};
use dse::prelude::*;

fn mixed() -> Vec<Platform> {
    vec![
        Platform::sunos_sparc(),
        Platform::aix_rs6000(),
        Platform::linux_pentium2(),
        Platform::linux_pentium2(),
    ]
}

fn main() {
    println!("cluster: sparc + rs6000 + 2x pentium-II (one kernel each)\n");

    println!("-- static partitioning (Gauss-Seidel N=400, 4 processors) --");
    let params = gauss_seidel::GaussSeidelParams::paper(400);
    for (label, program) in [
        (
            "all-sparc   ",
            DseProgram::new(Platform::sunos_sparc())
                .with_config(DseConfig::paper().with_machines(4)),
        ),
        ("mixed       ", DseProgram::heterogeneous(mixed())),
        (
            "all-pentium2",
            DseProgram::new(Platform::linux_pentium2())
                .with_config(DseConfig::paper().with_machines(4)),
        ),
    ] {
        let (run, sol) = gauss_seidel::solve_parallel(&program, 4, params);
        println!(
            "  {label}: {:>10}  ({} sweeps)",
            run.elapsed.to_string(),
            sol.iters
        );
    }
    println!("  → the row strips are equal, so the SparcStations gate the mixed run\n");

    println!("-- dynamic tasking (Knight's Tour, 64 jobs, 4 processors) --");
    for (label, program) in [
        (
            "all-sparc   ",
            DseProgram::new(Platform::sunos_sparc())
                .with_config(DseConfig::paper().with_machines(4)),
        ),
        ("mixed       ", DseProgram::heterogeneous(mixed())),
        (
            "all-pentium2",
            DseProgram::new(Platform::linux_pentium2())
                .with_config(DseConfig::paper().with_machines(4)),
        ),
    ] {
        let (run, count) = knights::count_parallel(&program, 4, knights::KnightsParams::paper(64));
        assert_eq!(count, 304);
        println!("  {label}: {:>10}", run.elapsed.to_string());
    }
    println!("  → the job counter feeds the fast machines more work: the mixed");
    println!("    cluster beats the static midpoint even though its master node");
    println!("    (the task-queue home) is a SparcStation");
}
