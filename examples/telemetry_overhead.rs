//! Telemetry overhead measurement: simulated execution time of a fixed
//! Gauss-Seidel solve with and without the in-band telemetry plane, at
//! 2, 4 and 8 PEs.
//!
//! The telemetry plane ships metric deltas over the same simulated bus as
//! application traffic, so its cost shows up directly in the virtual
//! clock. The budget is < 3 % added execution time at the default
//! emission interval; the example asserts it and prints the JSON document
//! committed as `bench_results/telemetry_overhead.json`:
//!
//! ```sh
//! cargo run --release --example telemetry_overhead > bench_results/telemetry_overhead.json
//! ```

use dse::apps::gauss_seidel::{self, GaussSeidelParams};
use dse::prelude::*;

fn elapsed_ns(procs: usize, telemetry: bool) -> u64 {
    let mut config = DseConfig::paper();
    if telemetry {
        config = config.with_telemetry(TelemetryConfig::default());
    }
    let program = DseProgram::new(Platform::sunos_sparc()).with_config(config);
    let (run, _) = gauss_seidel::solve_parallel(&program, procs, GaussSeidelParams::paper(120));
    run.elapsed.as_nanos()
}

fn main() {
    let budget_pct = 3.0;
    let interval_ms = TelemetryConfig::default().interval.as_nanos() / 1_000_000;
    println!("{{");
    println!("  \"workload\": \"gauss-seidel N=120, SunOS/SPARC, 6 machines\",");
    println!("  \"telemetry_interval_ms\": {interval_ms},");
    println!("  \"budget_pct\": {budget_pct},");
    println!("  \"results\": [");
    let mut overheads = Vec::new();
    let procs_list = [2usize, 4, 8];
    for (i, procs) in procs_list.iter().enumerate() {
        let base = elapsed_ns(*procs, false);
        let tel = elapsed_ns(*procs, true);
        let pct = (tel as f64 - base as f64) * 100.0 / base as f64;
        overheads.push((*procs, pct));
        let comma = if i + 1 < procs_list.len() { "," } else { "" };
        println!(
            "    {{\"procs\": {procs}, \"base_ns\": {base}, \"telemetry_ns\": {tel}, \
             \"overhead_pct\": {pct:.4}}}{comma}"
        );
    }
    println!("  ]");
    println!("}}");
    for (procs, pct) in overheads {
        assert!(
            pct < budget_pct,
            "telemetry overhead at {procs} PEs is {pct:.2}%, budget is {budget_pct}%"
        );
    }
}
