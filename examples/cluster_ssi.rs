//! The single-system image in action: one process table, symbolic names,
//! and placement policies over a virtual cluster.
//!
//! ```sh
//! cargo run --release --example cluster_ssi
//! ```

use dse::prelude::*;
use dse::ssi::{names, ClusterView};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    // 8 kernels on the paper's 6 machines: a virtual cluster.
    let printed = Arc::new(AtomicBool::new(false));
    let printed2 = Arc::clone(&printed);
    // Enable the in-band telemetry plane and print the live cluster top
    // view once per aggregation epoch (node 0's own loopback delta closes
    // an epoch — by then every older delta of the round has been applied).
    let config = DseConfig::paper()
        .with_telemetry(TelemetryConfig::default().with_interval(SimDuration::from_millis(2)));
    let result = DseProgram::new(Platform::sunos_sparc())
        .with_config(config)
        .with_epoch_hook(|agg, now_ns| {
            println!("--- live cluster top (t={:.1}ms) ---", now_ns as f64 / 1e6);
            print!("{}", render_top(agg, now_ns));
        })
        .run(8, move |ctx| {
            // Publish a named region from rank 3; everyone can resolve it.
            if ctx.rank() == 3 {
                let arr = GmArray::<u64>::alloc(ctx, 1, Distribution::OnNode(dse::msg::NodeId(3)));
                arr.set(ctx, 0, 0xC0FFEE);
                names::bind_array(ctx, "shared/config", &arr);
            }
            ctx.barrier();
            let region = names::lookup(ctx, "shared/config").expect("name service");
            let bytes = ctx.gm_read(region, 0, 8);
            assert_eq!(u64::from_le_bytes(bytes.try_into().unwrap()), 0xC0FFEE);

            // One rank prints the cluster-wide process table mid-run: every
            // process appears in one flat pid space, wherever it runs.
            if ctx.rank() == 0 && !printed2.swap(true, Ordering::SeqCst) {
                let shared = Arc::clone(ctx.shared());
                let view = ClusterView::new(&shared);
                println!("--- cluster-wide process table (SSI `ps`) ---");
                print!("{}", view.ps_text());
                println!("--- node table ---");
                for n in view.nodes() {
                    println!(
                        "  node {} on machine {} ({} kernels co-resident, {} running)",
                        n.node.0, n.machine, n.kernels_on_machine, n.running
                    );
                }
            }
            ctx.barrier();
        });
    println!("run completed in simulated {}", result.elapsed);
    if let Some(tel) = &result.telemetry {
        println!(
            "telemetry: {} nodes finalized, {} stalls",
            tel.nodes.iter().filter(|n| n.finalized).count(),
            tel.stalls.len()
        );
    }

    // Placement policies: where would an SSI scheduler put 8 processes?
    println!("--- placement of 8 processes on 6 machines ---");
    for policy in [
        PlacementPolicy::RoundRobin,
        PlacementPolicy::LeastLoaded,
        PlacementPolicy::Packed,
    ] {
        let mut placer = Placer::new(policy);
        let picks = placer.place_all(vec![0; 6], 8);
        println!("  {policy:?}: {picks:?}");
    }
}
