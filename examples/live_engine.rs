//! The live engine end to end: a 4-PE Gauss-Seidel solve where every
//! remote global-memory access is a real wire message, run twice — once on
//! the in-process channel transport and once over framed TCP on loopback —
//! and checked for identical results.
//!
//! This is also the CI smoke test for the transport stack: it exits
//! nonzero if the engines disagree, if no GM request ever crossed the
//! wire, or (via the CI-level `timeout`) if the shutdown handshake hangs.
//!
//! ```sh
//! cargo run --release --example live_engine
//! ```

use std::sync::Mutex;

use dse::apps::gauss_seidel::{self, GaussSeidelParams, Solution};
use dse::live::{LiveRunResult, LiveRunner, TransportKind};

fn solve_on(kind: TransportKind, params: &GaussSeidelParams) -> (LiveRunResult, Solution) {
    let slot: Mutex<Option<Solution>> = Mutex::new(None);
    let run = LiveRunner::new(4).transport(kind).run(|ctx| {
        if let Some(sol) = gauss_seidel::body(ctx, params) {
            *slot.lock().unwrap() = Some(sol);
        }
    });
    let sol = slot.into_inner().unwrap().expect("rank 0 solution");
    (run, sol)
}

fn main() {
    let params = GaussSeidelParams::paper(120);
    println!("Gauss-Seidel N={} on 4 live PEs, twice:", params.n);
    let mut reference: Option<Solution> = None;
    for kind in [TransportKind::Channel, TransportKind::Tcp] {
        let (run, sol) = solve_on(kind, &params);
        let reqs = run
            .metrics
            .counter_sum_over_pes("kernel", "gm_request_msgs");
        let served = run
            .metrics
            .counter_sum_over_pes("kernel", "requests_served");
        println!(
            "{:<8} {} sweeps, delta {:.2e}, wall {:?}, {} GM request messages, {} served",
            kind.name(),
            sol.iters,
            sol.delta,
            run.elapsed,
            reqs,
            served
        );
        assert!(reqs > 0, "{}: no GM request crossed the wire", kind.name());
        assert_eq!(reqs, served, "{}: requests lost in flight", kind.name());
        match &reference {
            None => reference = Some(sol),
            Some(first) => {
                assert_eq!(first.iters, sol.iters, "engines disagree on sweep count");
                assert_eq!(first.x, sol.x, "engines disagree on the solution");
            }
        }
    }
    println!("channel and TCP transports agree bit-for-bit.");
}
