//! The paper's portability study in one binary: the same parallel solver
//! runs unmodified on all three simulated platforms (and on real threads),
//! showing "similar performance patterns in all environments".
//!
//! ```sh
//! cargo run --release --example portability
//! ```

use dse::apps::gauss_seidel::{self, GaussSeidelParams};
use dse::prelude::*;

fn main() {
    let params = GaussSeidelParams::paper(600);
    println!("Gauss-Seidel, N = {}, on every Table-1 platform:", params.n);
    println!(
        "{:<10} {:>6} {:>12} {:>9} {:>8} {:>12}",
        "platform", "procs", "time [s]", "speedup", "iters", "collisions"
    );
    for platform in Platform::all() {
        let program = DseProgram::new(platform.clone());
        let mut base = None;
        for p in [1, 2, 4, 6, 8] {
            let (run, sol) = gauss_seidel::solve_parallel(&program, p, params);
            let t1 = *base.get_or_insert(run.secs());
            println!(
                "{:<10} {:>6} {:>12.4} {:>9.2} {:>8} {:>12}",
                platform.id,
                p,
                run.secs(),
                t1 / run.secs(),
                sol.iters,
                run.net_collisions
            );
        }
        println!();
    }
    println!("Same program, same pattern, different absolute times —");
    println!("the portability claim of the paper, reproduced.");

    // And the very same body on the live engine:
    let live = LiveRunner::new(4).run(|ctx| {
        let sol = gauss_seidel::body(ctx, &params);
        if let Some(sol) = sol {
            println!(
                "live engine (4 threads): converged in {} sweeps, wall time measured outside",
                sol.iters
            );
        }
    });
    println!("live engine wall-clock: {:?}", live.elapsed);
}
